#include "persist/snapshot_writer.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/env.h"

namespace tlp {

namespace {

/// Temp names are `<final>.tmp.<pid>.<seq>`: the pid+sequence keeps
/// concurrent saves of *different* destinations in one directory from
/// colliding, and the `<final>.tmp.` prefix lets the next save of the same
/// destination recognise and collect temps a crashed process left behind.
std::string MakeTempPath(const std::string& final_path) {
  static std::atomic<std::uint64_t> seq{0};
  return final_path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(seq.fetch_add(1));
}

/// Best-effort removal of stale temps from earlier crashed saves of this
/// destination. Failures are swallowed: a leftover temp costs disk space,
/// not correctness, and must not block a new save.
void CleanupStaleTemps(FileSystem* fs, const std::string& final_path) {
  const std::string dir = DirnameOf(final_path);
  std::string base = final_path;
  if (const auto slash = base.find_last_of('/'); slash != std::string::npos) {
    base = base.substr(slash + 1);
  }
  const std::string prefix = base + ".tmp.";
  std::vector<std::string> names;
  if (!fs->ListDir(dir, &names).ok()) return;
  for (const std::string& name : names) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      (void)fs->RemoveFile(dir + "/" + name).ok();
    }
  }
}

}  // namespace

SnapshotWriter::~SnapshotWriter() { (void)Abandon().ok(); }

Status SnapshotWriter::Abandon() {
  if (file_ == nullptr && temp_path_.empty()) return Status::OK();
  Status result;
  if (file_ != nullptr) {
    result = file_->Close();
    file_ = nullptr;
  }
  if (!temp_path_.empty()) {
    Status removed = fs_->RemoveFile(temp_path_);
    if (result.ok()) result = std::move(removed);
    temp_path_.clear();
  }
  return result;
}

Status SnapshotWriter::Open(const std::string& path, SnapshotIndexKind kind,
                            FileSystem* fs) {
  (void)Abandon().ok();
  fs_ = ResolveFs(fs);
  status_ = Status::OK();
  sections_.clear();
  in_section_ = false;
  final_path_ = path;
  kind_ = kind;
  CleanupStaleTemps(fs_, path);
  temp_path_ = MakeTempPath(path);
  Status s = fs_->NewWritableFile(temp_path_, &file_);
  if (!s.ok()) {
    temp_path_.clear();
    status_ = Status::IoError(path + ": cannot create snapshot temp: " +
                              s.message());
    return status_;
  }
  // Placeholder header; Finalize overwrites it in place once the section
  // table location and checksums are known.
  const SnapshotHeader zero{};
  offset_ = 0;
  PutBytes(&zero, sizeof(zero));
  return status_;
}

void SnapshotWriter::Fail(Status status) {
  if (status.ok()) {
    throw std::logic_error("SnapshotWriter::Fail called with an OK status");
  }
  if (status_.ok()) status_ = std::move(status);
}

void SnapshotWriter::PutBytes(const void* data, std::size_t n) {
  if (!status_.ok() || file_ == nullptr || n == 0) return;
  Status s = file_->Append(data, n);
  if (!s.ok()) {
    Fail(Status::IoError(temp_path_ + ": write failed: " + s.message()));
    return;
  }
  offset_ += n;
}

void SnapshotWriter::PadTo(std::size_t alignment) {
  static const char kZeros[kSnapshotAlignment] = {};
  const std::size_t rem = offset_ % alignment;
  if (rem != 0) PutBytes(kZeros, alignment - rem);
}

void SnapshotWriter::BeginSection(std::uint32_t id) {
  // Protocol-state misuse throws in every build mode: an assert here would
  // compile out under NDEBUG and let a miswritten codec emit a snapshot
  // with silently interleaved sections.
  if (in_section_) {
    throw std::logic_error(
        "SnapshotWriter::BeginSection with a section still open");
  }
  if (file_ == nullptr) {
    Fail(Status::Error("BeginSection on a writer that is not open"));
    return;
  }
  PadTo(kSnapshotAlignment);
  SectionDesc desc{};
  desc.id = id;
  desc.offset = offset_;
  desc.size = 0;
  desc.crc32 = 0;
  sections_.push_back(desc);
  section_crc_ = 0;
  in_section_ = true;
}

void SnapshotWriter::Write(const void* data, std::size_t n) {
  if (!in_section_) {
    throw std::logic_error(
        "SnapshotWriter::Write outside BeginSection/EndSection");
  }
  if (!status_.ok() || n == 0) return;
  section_crc_ = Crc32(data, n, section_crc_);
  PutBytes(data, n);
  sections_.back().size += n;
}

void SnapshotWriter::EndSection() {
  if (!in_section_) {
    throw std::logic_error(
        "SnapshotWriter::EndSection without an open section");
  }
  if (!sections_.empty()) sections_.back().crc32 = section_crc_;
  in_section_ = false;
}

Status SnapshotWriter::Finalize(std::uint64_t index_size_bytes,
                                std::uint64_t entry_count) {
  if (in_section_) {
    throw std::logic_error(
        "SnapshotWriter::Finalize with a section still open");
  }
  if (file_ == nullptr && status_.ok()) {
    Fail(Status::Error("Finalize on a writer that is not open"));
  }
  if (status_.ok()) {
    PadTo(alignof(SectionDesc));
    const std::uint64_t table_offset = offset_;
    PutBytes(sections_.data(), sections_.size() * sizeof(SectionDesc));

    SnapshotHeader header{};
    std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
    header.format_version = kSnapshotFormatVersion;
    header.endian_tag = kSnapshotEndianTag;
    header.index_kind = static_cast<std::uint32_t>(kind_);
    header.section_count = static_cast<std::uint32_t>(sections_.size());
    header.table_offset = table_offset;
    header.file_size = offset_;
    header.index_size_bytes = index_size_bytes;
    header.entry_count = entry_count;
    header.table_crc = Crc32(sections_.data(),
                             sections_.size() * sizeof(SectionDesc));
    header.header_crc =
        Crc32(&header, sizeof(SnapshotHeader) - sizeof(std::uint32_t));
    if (status_.ok()) {
      Status s = file_->WriteAt(0, &header, sizeof(header));
      if (!s.ok()) {
        Fail(Status::IoError(temp_path_ + ": header write failed: " +
                             s.message()));
      }
    }
    // The temp's bytes must be durable BEFORE the rename publishes it: a
    // rename is only atomic against crashes if the renamed content already
    // survives them.
    if (status_.ok()) {
      Status s = file_->Sync();
      if (!s.ok()) {
        Fail(Status::IoError(temp_path_ + ": fsync failed: " + s.message()));
      }
    }
  }
  if (file_ != nullptr) {
    Status s = file_->Close();
    file_ = nullptr;
    if (!s.ok()) {
      Fail(Status::IoError(temp_path_ + ": close failed: " + s.message()));
    }
  }
  if (status_.ok()) {
    Status s = fs_->RenameFile(temp_path_, final_path_);
    if (!s.ok()) {
      Fail(Status::IoError(final_path_ + ": rename failed: " + s.message()));
    } else {
      // The rename consumed the temp; nothing left to abandon.
      temp_path_.clear();
      // Make the rename itself durable. If this fails the new snapshot is
      // already complete and valid at the destination — report the error
      // (durability is not guaranteed) but leave the file in place.
      s = fs_->SyncDir(DirnameOf(final_path_));
      if (!s.ok()) {
        Fail(Status::IoError(final_path_ +
                             ": parent directory fsync failed: " +
                             s.message()));
      }
    }
  }
  if (!status_.ok()) (void)Abandon().ok();
  return status_;
}

}  // namespace tlp
