#ifndef TLP_PERSIST_SNAPSHOT_FORMAT_H_
#define TLP_PERSIST_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

namespace tlp {

/// On-disk layout of an index snapshot (`*.tlps`), docs/PERSISTENCE.md:
///
///   [ SnapshotHeader | section 0 | pad | section 1 | ... | section table ]
///
/// The fixed 64-byte header sits at offset 0 and is written last (it records
/// the section-table location and the checksums). Every section payload
/// starts at a 64-byte-aligned offset so numeric columns inside it can be
/// memory-mapped and dereferenced in place; the section table (an array of
/// SectionDesc) sits at the end of the file.
///
/// Integrity: the header carries a CRC32 of its own first 60 bytes plus a
/// CRC32 of the section table; each SectionDesc carries a CRC32 of its
/// payload. All multi-byte values are native-endian — the `endian_tag` field
/// rejects snapshots from a foreign-endianness machine at load time, which
/// is the portability contract (x86-64/aarch64 little-endian files are
/// interchangeable; big-endian files are refused, not misread).

inline constexpr char kSnapshotMagic[8] = {'T', 'L', 'P', 'S',
                                           'N', 'A', 'P', '\0'};
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;
inline constexpr std::uint32_t kSnapshotEndianTag = 0x01020304;
inline constexpr std::uint32_t kSnapshotAlignment = 64;

/// Which index class a snapshot holds (header `index_kind`).
enum class SnapshotIndexKind : std::uint32_t {
  kOneLayerGrid = 1,
  kTwoLayerGrid = 2,
  kTwoLayerPlusGrid = 3,
};

inline const char* SnapshotIndexKindName(SnapshotIndexKind kind) {
  switch (kind) {
    case SnapshotIndexKind::kOneLayerGrid:
      return "1-layer";
    case SnapshotIndexKind::kTwoLayerGrid:
      return "2-layer";
    case SnapshotIndexKind::kTwoLayerPlusGrid:
      return "2-layer+";
  }
  return "unknown";
}

/// Section identifiers. A snapshot contains the subset its index kind needs;
/// readers locate sections by id, so optional sections and future additions
/// do not shift existing ones (versioning rules: docs/PERSISTENCE.md).
enum SnapshotSectionId : std::uint32_t {
  /// Grid geometry: domain box (4 doubles) + nx, ny (u32 each); 40 bytes.
  kSecLayout = 1,
  /// Per-tile class-segment boundaries of the record layer:
  /// (kNumClasses + 1) u32 per tile, tile-id order.
  kSecTileBegins = 2,
  /// Concatenated per-tile BoxEntry arrays (record layer / 1-layer tiles),
  /// tile-id order; per-tile lengths derive from kSecTileBegins (2-layer)
  /// or kSecTileCounts (1-layer).
  kSecTileEntries = 3,
  /// id -> MBR table of the 2-layer+ grid: one Box (4 doubles) per id.
  kSecMbrs = 4,
  /// Directory of the 2-layer+ decomposed sorted tables: one
  /// SnapshotTableDirEntry per tile that owns tables, tile-id ascending.
  kSecTableDir = 5,
  /// All sorted-table coordinate columns, concatenated in directory order
  /// (tile asc, then class 0..3, then coord xl,xu,yl,yu where stored).
  kSecTableValues = 6,
  /// All sorted-table id columns, same order as kSecTableValues.
  kSecTableIds = 7,
  /// 1-layer extras: duplicate-elimination policy (u32).
  kSecDedupPolicy = 8,
  /// 1-layer per-tile entry counts (u32 per tile).
  kSecTileCounts = 9,
};

struct SnapshotHeader {
  char magic[8];
  std::uint32_t format_version;
  std::uint32_t endian_tag;
  std::uint32_t index_kind;
  std::uint32_t section_count;
  std::uint64_t table_offset;      // file offset of the SectionDesc array
  std::uint64_t file_size;         // total snapshot size, truncation guard
  std::uint64_t index_size_bytes;  // SizeBytes() of the saved index
  std::uint64_t entry_count;       // stored entries, replicas included
  std::uint32_t table_crc;         // CRC32 of the SectionDesc array
  std::uint32_t header_crc;        // CRC32 of this struct's first 60 bytes
};
static_assert(sizeof(SnapshotHeader) == 64);
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);

struct SectionDesc {
  std::uint32_t id;      // SnapshotSectionId
  std::uint32_t crc32;   // CRC32 of the payload bytes
  std::uint64_t offset;  // payload file offset, kSnapshotAlignment-aligned
  std::uint64_t size;    // payload bytes
};
static_assert(sizeof(SectionDesc) == 24);
static_assert(std::is_trivially_copyable_v<SectionDesc>);

/// One kSecTableDir record: the sorted-table sizes of one tile. Unstored
/// (class, coord) combinations (cf. Table II / TableStored) must be zero.
/// Column payload offsets are implicit: a running sum over the directory in
/// order recovers every table's position inside kSecTableValues/kSecTableIds.
struct SnapshotTableDirEntry {
  std::uint32_t tile_id;
  std::uint32_t count[4][4];  // [class][coord: xl,xu,yl,yu]
};
static_assert(sizeof(SnapshotTableDirEntry) == 68);
static_assert(std::is_trivially_copyable_v<SnapshotTableDirEntry>);

inline bool SnapshotMagicMatches(const SnapshotHeader& h) {
  return std::memcmp(h.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) == 0;
}

}  // namespace tlp

#endif  // TLP_PERSIST_SNAPSHOT_FORMAT_H_
