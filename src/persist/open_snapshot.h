#ifndef TLP_PERSIST_OPEN_SNAPSHOT_H_
#define TLP_PERSIST_OPEN_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/spatial_index.h"
#include "common/file_system.h"
#include "common/status.h"
#include "persist/snapshot_format.h"

namespace tlp {

/// Header summary of a snapshot file, for tooling (`tlp_snapshot info`).
struct SnapshotInfo {
  SnapshotIndexKind kind = SnapshotIndexKind::kTwoLayerGrid;
  std::uint32_t format_version = 0;
  std::uint32_t section_count = 0;
  std::uint64_t file_size = 0;
  std::uint64_t index_size_bytes = 0;
  std::uint64_t entry_count = 0;
};

/// Validates the header/section table of `path` (O(1) pages, no payload
/// read) and reports what the snapshot holds. `fs` routes the file I/O
/// (POSIX default when null), as everywhere in this header.
[[nodiscard]] Status ReadSnapshotInfo(const std::string& path,
                                      SnapshotInfo* out,
                                      FileSystem* fs = nullptr);

/// Full integrity pass: header, section table, and every payload CRC.
[[nodiscard]] Status VerifySnapshot(const std::string& path,
                                    FileSystem* fs = nullptr);

/// Opens `path` as whatever index kind it holds — the snapshot, not the
/// caller, names the class. With `mapped` the 2-layer+ zero-copy load path
/// is used (other kinds have no mapped representation and are refused with
/// StatusCode::kKindMismatch, so a caller asking for O(pages) cold start
/// never silently pays a full deserialization).
[[nodiscard]] Status OpenSnapshot(const std::string& path, bool mapped,
                                  std::unique_ptr<PersistentIndex>* out,
                                  FileSystem* fs = nullptr);

}  // namespace tlp

#endif  // TLP_PERSIST_OPEN_SNAPSHOT_H_
