#include "persist/snapshot_reader.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>

namespace tlp {

namespace {

std::string SectionName(std::uint32_t id) {
  return "section " + std::to_string(id);
}

}  // namespace

Status SnapshotReader::Open(const std::string& path, Mode mode) {
  mode_ = mode;
  table_.clear();
  base_ = nullptr;
  if (mode == Mode::kMapped) {
    std::string error;
    if (!MappedFile::Open(path, &map_, &error)) return Status::Error(error);
    base_ = map_.data();
    return Validate(path, map_.size());
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error(path + ": cannot open snapshot: " +
                         std::strerror(errno));
  }
  // Size via fstat: seek/tell would cap the size at LONG_MAX (2 GiB on
  // LP32-style platforms) and silently ignore seek failures.
  struct stat st;
  if (::fstat(::fileno(f), &st) != 0) {
    const std::string reason = std::strerror(errno);
    std::fclose(f);
    return Status::Error(path + ": cannot size snapshot: " + reason);
  }
  if (!S_ISREG(st.st_mode)) {
    std::fclose(f);
    return Status::Error(path + ": not a regular file");
  }
  const auto file_size = static_cast<std::uint64_t>(st.st_size);
  if (file_size > std::numeric_limits<std::size_t>::max()) {
    std::fclose(f);
    return Status::Error(path + ": snapshot too large for this platform");
  }
  buffer_.resize(static_cast<std::size_t>(file_size));
  const std::size_t got = std::fread(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (got != buffer_.size()) {
    return Status::Error(path + ": short read");
  }
  base_ = buffer_.data();
  Status s = Validate(path, buffer_.size());
  if (!s.ok()) return s;
  return VerifyPayloadChecksums();
}

Status SnapshotReader::Validate(const std::string& path,
                                std::size_t actual_size) {
  if (actual_size < sizeof(SnapshotHeader)) {
    return Status::Error(path + ": not a snapshot (file smaller than the " +
                         std::to_string(sizeof(SnapshotHeader)) +
                         "-byte header)");
  }
  std::memcpy(&header_, base_, sizeof(SnapshotHeader));
  if (!SnapshotMagicMatches(header_)) {
    return Status::Error(path + ": not a snapshot (bad magic)");
  }
  const std::uint32_t expected_crc =
      Crc32(&header_, sizeof(SnapshotHeader) - sizeof(std::uint32_t));
  if (header_.header_crc != expected_crc) {
    return Status::Error(path + ": header checksum mismatch (corrupt file)");
  }
  if (header_.endian_tag != kSnapshotEndianTag) {
    return Status::Error(
        path + ": snapshot was written on a machine with different "
               "endianness; refusing to misread it");
  }
  if (header_.format_version != kSnapshotFormatVersion) {
    return Status::Error(
        path + ": unsupported snapshot format version " +
        std::to_string(header_.format_version) + " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (header_.file_size != actual_size) {
    return Status::Error(path + ": truncated snapshot (header records " +
                         std::to_string(header_.file_size) +
                         " bytes, file has " + std::to_string(actual_size) +
                         ")");
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(header_.section_count) * sizeof(SectionDesc);
  if (header_.table_offset > actual_size ||
      table_bytes > actual_size - header_.table_offset ||
      header_.table_offset % alignof(SectionDesc) != 0) {
    return Status::Error(path + ": section table out of bounds");
  }
  table_.resize(header_.section_count);
  std::memcpy(table_.data(), base_ + header_.table_offset, table_bytes);
  if (header_.table_crc != Crc32(table_.data(), table_bytes)) {
    return Status::Error(path +
                         ": section table checksum mismatch (corrupt file)");
  }
  for (const SectionDesc& sec : table_) {
    if (sec.offset % kSnapshotAlignment != 0 || sec.offset > actual_size ||
        sec.size > actual_size - sec.offset) {
      return Status::Error(path + ": " + SectionName(sec.id) +
                           " out of bounds (corrupt file)");
    }
  }
  return Status::OK();
}

bool SnapshotReader::Has(std::uint32_t id) const {
  for (const SectionDesc& sec : table_) {
    if (sec.id == id) return true;
  }
  return false;
}

Status SnapshotReader::Find(std::uint32_t id, Span* out) const {
  for (const SectionDesc& sec : table_) {
    if (sec.id == id) {
      out->data = base_ + sec.offset;
      out->size = sec.size;
      return Status::OK();
    }
  }
  return Status::Error("snapshot is missing mandatory " + SectionName(id));
}

Status SnapshotReader::VerifyPayloadChecksums() const {
  for (const SectionDesc& sec : table_) {
    if (Crc32(base_ + sec.offset, sec.size) != sec.crc32) {
      return Status::Error(SectionName(sec.id) +
                           " checksum mismatch (corrupt snapshot)");
    }
  }
  return Status::OK();
}

}  // namespace tlp
