#include "persist/snapshot_reader.h"

#include <cstdint>
#include <cstring>

namespace tlp {

namespace {

std::string SectionName(std::uint32_t id) {
  return "section " + std::to_string(id);
}

}  // namespace

Status SnapshotReader::Open(const std::string& path, Mode mode,
                            FileSystem* fs) {
  FileSystem* const resolved = ResolveFs(fs);
  mode_ = mode;
  table_.clear();
  base_ = nullptr;
  if (mode == Mode::kMapped) {
    Status s = resolved->MapReadOnly(path, &map_);
    if (!s.ok()) return s;
    base_ = map_.data();
    return Validate(path, map_.size());
  }
  Status s = resolved->ReadFile(path, &buffer_);
  if (!s.ok()) return s;
  base_ = buffer_.data();
  s = Validate(path, buffer_.size());
  if (!s.ok()) return s;
  return VerifyPayloadChecksums();
}

Status SnapshotReader::Validate(const std::string& path,
                                std::size_t actual_size) {
  if (actual_size < sizeof(SnapshotHeader)) {
    return Status::Corruption(path + ": not a snapshot (file smaller than the " +
                         std::to_string(sizeof(SnapshotHeader)) +
                         "-byte header)");
  }
  std::memcpy(&header_, base_, sizeof(SnapshotHeader));
  if (!SnapshotMagicMatches(header_)) {
    return Status::Corruption(path + ": not a snapshot (bad magic)");
  }
  const std::uint32_t expected_crc =
      Crc32(&header_, sizeof(SnapshotHeader) - sizeof(std::uint32_t));
  if (header_.header_crc != expected_crc) {
    return Status::Corruption(path +
                              ": header checksum mismatch (corrupt file)");
  }
  if (header_.endian_tag != kSnapshotEndianTag) {
    return Status::Corruption(
        path + ": snapshot was written on a machine with different "
               "endianness; refusing to misread it");
  }
  if (header_.format_version != kSnapshotFormatVersion) {
    return Status::Corruption(
        path + ": unsupported snapshot format version " +
        std::to_string(header_.format_version) + " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (header_.file_size != actual_size) {
    return Status::Corruption(path + ": truncated snapshot (header records " +
                         std::to_string(header_.file_size) +
                         " bytes, file has " + std::to_string(actual_size) +
                         ")");
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(header_.section_count) * sizeof(SectionDesc);
  if (header_.table_offset > actual_size ||
      table_bytes > actual_size - header_.table_offset ||
      header_.table_offset % alignof(SectionDesc) != 0) {
    return Status::Corruption(path + ": section table out of bounds");
  }
  table_.resize(header_.section_count);
  std::memcpy(table_.data(), base_ + header_.table_offset, table_bytes);
  if (header_.table_crc != Crc32(table_.data(), table_bytes)) {
    return Status::Corruption(
        path + ": section table checksum mismatch (corrupt file)");
  }
  for (const SectionDesc& sec : table_) {
    if (sec.offset % kSnapshotAlignment != 0 || sec.offset > actual_size ||
        sec.size > actual_size - sec.offset) {
      return Status::Corruption(path + ": " + SectionName(sec.id) +
                                " out of bounds (corrupt file)");
    }
  }
  return Status::OK();
}

bool SnapshotReader::Has(std::uint32_t id) const {
  for (const SectionDesc& sec : table_) {
    if (sec.id == id) return true;
  }
  return false;
}

Status SnapshotReader::Find(std::uint32_t id, Span* out) const {
  for (const SectionDesc& sec : table_) {
    if (sec.id == id) {
      out->data = base_ + sec.offset;
      out->size = sec.size;
      return Status::OK();
    }
  }
  return Status::Corruption("snapshot is missing mandatory " +
                            SectionName(id));
}

Status SnapshotReader::VerifyPayloadChecksums() const {
  for (const SectionDesc& sec : table_) {
    if (Crc32(base_ + sec.offset, sec.size) != sec.crc32) {
      return Status::Corruption(SectionName(sec.id) +
                                " checksum mismatch (corrupt snapshot)");
    }
  }
  return Status::OK();
}

}  // namespace tlp
