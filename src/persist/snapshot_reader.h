#ifndef TLP_PERSIST_SNAPSHOT_READER_H_
#define TLP_PERSIST_SNAPSHOT_READER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/file_system.h"
#include "common/status.h"
#include "persist/snapshot_format.h"

namespace tlp {

/// Validates and exposes a snapshot file as id-addressed byte sections.
///
/// Two modes:
///  * kBuffered — reads the whole file into memory and verifies every
///    checksum (header, section table, and each section payload). The mode
///    of owned Load(): any flipped byte or truncation is rejected with a
///    diagnostic before an index deserializes a single field.
///  * kMapped — mmap()s the file read-only. Header, table, and structural
///    bounds are verified eagerly (touching O(1) pages); section payload
///    CRCs are deferred — call VerifyPayloadChecksums() to force the full
///    O(file) pass — so a mapped cold start stays proportional to the pages
///    it actually touches. docs/PERSISTENCE.md spells out this trade.
///
/// Section spans point into the reader's buffer/mapping: the reader must
/// outlive every span (a mapped 2-layer+ grid owns its reader for exactly
/// this reason).
class SnapshotReader {
 public:
  enum class Mode { kBuffered, kMapped };

  struct Span {
    const unsigned char* data = nullptr;
    std::size_t size = 0;
  };

  SnapshotReader() = default;
  SnapshotReader(SnapshotReader&&) = default;
  SnapshotReader& operator=(SnapshotReader&&) = default;

  /// Opens and validates `path` through `fs` (POSIX default when null).
  /// Failures are classified: the environment failing to open/read/map the
  /// file is StatusCode::kIoError; a file that reads fine but is malformed —
  /// wrong magic, foreign endianness, unsupported version, truncation,
  /// checksum mismatch, out-of-bounds section — is StatusCode::kCorruption.
  /// Either way the result is a descriptive error, never a crash.
  [[nodiscard]] Status Open(const std::string& path, Mode mode,
                            FileSystem* fs = nullptr);

  [[nodiscard]] const SnapshotHeader& header() const { return header_; }
  [[nodiscard]] const std::vector<SectionDesc>& sections() const {
    return table_;
  }
  [[nodiscard]] bool mapped() const { return mode_ == Mode::kMapped; }

  [[nodiscard]] bool Has(std::uint32_t id) const;
  /// Locates section `id`; missing sections are an error (every section is
  /// mandatory for the index kind that wrote it).
  [[nodiscard]] Status Find(std::uint32_t id, Span* out) const;

  /// CRC32-verifies every section payload (already done on kBuffered open).
  [[nodiscard]] Status VerifyPayloadChecksums() const;

 private:
  Status Validate(const std::string& path, std::size_t actual_size);

  MappedFile map_;
  std::vector<unsigned char> buffer_;
  const unsigned char* base_ = nullptr;
  SnapshotHeader header_{};
  std::vector<SectionDesc> table_;
  Mode mode_ = Mode::kBuffered;
};

}  // namespace tlp

#endif  // TLP_PERSIST_SNAPSHOT_READER_H_
