#include "persist/open_snapshot.h"

#include <utility>

#include "core/two_layer_grid.h"
#include "core/two_layer_plus_grid.h"
#include "grid/grid_layout.h"
#include "grid/one_layer_grid.h"
#include "persist/snapshot_reader.h"

namespace tlp {
namespace {

/// Placeholder geometry for factory-constructed grids; Load() replaces it
/// with the layout recorded in the snapshot.
GridLayout BootstrapLayout() { return GridLayout(Box{0, 0, 1, 1}, 1, 1); }

}  // namespace

Status ReadSnapshotInfo(const std::string& path, SnapshotInfo* out,
                        FileSystem* fs) {
  SnapshotReader reader;
  Status s = reader.Open(path, SnapshotReader::Mode::kMapped, fs);
  if (!s.ok()) return s;
  const SnapshotHeader& h = reader.header();
  out->kind = static_cast<SnapshotIndexKind>(h.index_kind);
  out->format_version = h.format_version;
  out->section_count = h.section_count;
  out->file_size = h.file_size;
  out->index_size_bytes = h.index_size_bytes;
  out->entry_count = h.entry_count;
  return Status::OK();
}

Status VerifySnapshot(const std::string& path, FileSystem* fs) {
  SnapshotReader reader;
  Status s = reader.Open(path, SnapshotReader::Mode::kMapped, fs);
  if (!s.ok()) return s;
  return reader.VerifyPayloadChecksums();
}

Status OpenSnapshot(const std::string& path, bool mapped,
                    std::unique_ptr<PersistentIndex>* out, FileSystem* fs) {
  SnapshotInfo info;
  Status s = ReadSnapshotInfo(path, &info, fs);
  if (!s.ok()) return s;

  switch (info.kind) {
    case SnapshotIndexKind::kOneLayerGrid: {
      if (mapped) {
        return Status::KindMismatch(
            "mapped load is only supported for 2-layer+ snapshots; '" + path +
            "' holds a 1-layer index");
      }
      auto index = std::make_unique<OneLayerGrid>(BootstrapLayout());
      s = index->Load(path, fs);
      if (!s.ok()) return s;
      *out = std::move(index);
      return Status::OK();
    }
    case SnapshotIndexKind::kTwoLayerGrid: {
      if (mapped) {
        return Status::KindMismatch(
            "mapped load is only supported for 2-layer+ snapshots; '" + path +
            "' holds a 2-layer index");
      }
      auto index = std::make_unique<TwoLayerGrid>(BootstrapLayout());
      s = index->Load(path, fs);
      if (!s.ok()) return s;
      *out = std::move(index);
      return Status::OK();
    }
    case SnapshotIndexKind::kTwoLayerPlusGrid: {
      auto index = std::make_unique<TwoLayerPlusGrid>(BootstrapLayout());
      s = mapped ? index->LoadMapped(path, /*verify_checksums=*/false, fs)
                 : index->Load(path, fs);
      if (!s.ok()) return s;
      *out = std::move(index);
      return Status::OK();
    }
  }
  return Status::Corruption(
      "snapshot '" + path + "' holds unknown index kind " +
      std::to_string(static_cast<std::uint32_t>(info.kind)));
}

}  // namespace tlp
