#ifndef TLP_PERSIST_SNAPSHOT_WRITER_H_
#define TLP_PERSIST_SNAPSHOT_WRITER_H_

#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/file_system.h"
#include "common/status.h"
#include "persist/snapshot_format.h"

namespace tlp {

/// Streams an index snapshot to disk section by section:
///
///   SnapshotWriter w;
///   Status s = w.Open(path, SnapshotIndexKind::kTwoLayerGrid);
///   w.BeginSection(kSecLayout);
///   w.Write(&blob, sizeof(blob));     // any number of Write calls
///   w.EndSection();                   // ... more sections ...
///   s = w.Finalize(index.SizeBytes(), index.entry_count());
///
/// Each section is padded to a 64-byte-aligned start and CRC32-checksummed
/// as it streams through; Finalize appends the section table and rewrites
/// the header with the table location and checksums. Errors are sticky: any
/// failed call poisons the writer and Finalize reports the first failure.
///
/// Crash-safe atomic save (durability contract, docs/ROBUSTNESS.md): the
/// writer never touches the destination path until the snapshot is complete
/// and durable. Open creates `path.tmp.<pid>.<seq>` (removing stale temps a
/// crashed earlier save of the same destination left behind); Finalize
/// writes the section table and header, fsync()s the temp file, atomically
/// rename(2)s it onto `path`, and fsync()s the parent directory so the
/// rename itself survives power loss. A crash or failure at ANY point
/// before the rename leaves the destination exactly as it was — the
/// complete previous snapshot, or no file — never a torn one. Concurrent
/// saves to the same destination are unsupported (last rename wins).
///
/// All file I/O goes through a pluggable FileSystem (tests inject a
/// FaultInjectingFs to exercise every failure point); pass nothing to use
/// the POSIX default.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Starts an atomic save targeting `path`: cleans up stale temp files of
  /// this destination, creates the new temp, and reserves header space.
  [[nodiscard]] Status Open(const std::string& path, SnapshotIndexKind kind,
                            FileSystem* fs = nullptr);

  /// Starts a new section (finishing any open one is a caller bug).
  void BeginSection(std::uint32_t id);
  /// Appends payload bytes to the open section.
  void Write(const void* data, std::size_t n);
  /// Appends one trivially copyable value to the open section.
  template <typename T>
  void WriteValue(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(&v, sizeof(T));
  }
  void EndSection();

  /// Completes the atomic save: section table, final header, file fsync,
  /// rename onto the destination, directory fsync. After Finalize returns
  /// OK the destination is a complete snapshot that survives a crash; on
  /// failure the temp file is removed and the destination is untouched.
  [[nodiscard]] Status Finalize(std::uint64_t index_size_bytes,
                                std::uint64_t entry_count);

  /// Abandons an in-progress save: closes and removes the temp file, never
  /// touching the destination. Returns the first failure encountered while
  /// cleaning up (a leaked temp file is worth reporting — it holds disk
  /// space until the next save of the same destination collects it). The
  /// destructor calls this and drops the result.
  [[nodiscard]] Status Abandon();

 private:
  void Fail(Status status);
  void PutBytes(const void* data, std::size_t n);
  void PadTo(std::size_t alignment);

  FileSystem* fs_ = nullptr;
  std::unique_ptr<WritableFile> file_;
  std::string final_path_;
  std::string temp_path_;
  SnapshotIndexKind kind_ = SnapshotIndexKind::kTwoLayerGrid;
  std::vector<SectionDesc> sections_;
  std::uint64_t offset_ = 0;
  std::uint32_t section_crc_ = 0;
  bool in_section_ = false;
  Status status_;
};

}  // namespace tlp

#endif  // TLP_PERSIST_SNAPSHOT_WRITER_H_
