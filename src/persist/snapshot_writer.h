#ifndef TLP_PERSIST_SNAPSHOT_WRITER_H_
#define TLP_PERSIST_SNAPSHOT_WRITER_H_

#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "persist/snapshot_format.h"

namespace tlp {

/// Streams an index snapshot to disk section by section:
///
///   SnapshotWriter w;
///   Status s = w.Open(path, SnapshotIndexKind::kTwoLayerGrid);
///   w.BeginSection(kSecLayout);
///   w.Write(&blob, sizeof(blob));     // any number of Write calls
///   w.EndSection();                   // ... more sections ...
///   s = w.Finalize(index.SizeBytes(), index.entry_count());
///
/// Each section is padded to a 64-byte-aligned start and CRC32-checksummed
/// as it streams through; Finalize appends the section table and rewrites
/// the header with the table location and checksums. Errors are sticky: any
/// failed call poisons the writer and Finalize reports the first failure.
/// A failed or abandoned writer removes its partial output file.
class SnapshotWriter {
 public:
  SnapshotWriter() = default;
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Creates/truncates `path` and reserves space for the header.
  Status Open(const std::string& path, SnapshotIndexKind kind);

  /// Starts a new section (finishing any open one is a caller bug).
  void BeginSection(std::uint32_t id);
  /// Appends payload bytes to the open section.
  void Write(const void* data, std::size_t n);
  /// Appends one trivially copyable value to the open section.
  template <typename T>
  void WriteValue(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(&v, sizeof(T));
  }
  void EndSection();

  /// Writes the section table and final header, then closes the file. After
  /// Finalize returns OK the file is a complete, verifiable snapshot.
  Status Finalize(std::uint64_t index_size_bytes, std::uint64_t entry_count);

 private:
  void Fail(const std::string& message);
  void PutBytes(const void* data, std::size_t n);
  void PadTo(std::size_t alignment);
  void Abandon();

  std::FILE* file_ = nullptr;
  std::string path_;
  SnapshotIndexKind kind_ = SnapshotIndexKind::kTwoLayerGrid;
  std::vector<SectionDesc> sections_;
  std::uint64_t offset_ = 0;
  std::uint32_t section_crc_ = 0;
  bool in_section_ = false;
  Status status_;
};

}  // namespace tlp

#endif  // TLP_PERSIST_SNAPSHOT_WRITER_H_
