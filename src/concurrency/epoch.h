#ifndef TLP_CONCURRENCY_EPOCH_H_
#define TLP_CONCURRENCY_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tlp {

/// Epoch-based reclamation domain (classic 3-bucket scheme): the memory
/// manager under the concurrent index (docs/CONCURRENCY.md).
///
/// Readers *pin* the domain around every access to an epoch-protected
/// object (here: a published index Version). Pinning announces the current
/// global epoch in one of a fixed array of slots; while any slot announces
/// epoch e, nothing retired during epoch e or e-1 is freed. Writers hand
/// garbage to Retire(), which parks it in the bucket of the current epoch;
/// TryAdvance() bumps the global epoch once every pinned reader has caught
/// up to it and then frees the one bucket that can no longer be reached
/// (retired two epochs ago — the standard "global - 2" rule, implemented as
/// three rotating buckets).
///
/// Memory ordering: the protocol uses seq_cst throughout. The publication
/// edge (std::atomic store of a new version pointer) and the announcement
/// edge (slot store then global re-check) are the two places where a weaker
/// ordering would need a fence argument; at the update rates this layer
/// targets (bulk merges, not per-op contention) the simplicity is worth
/// more than the fence.
///
/// Capacity: kMaxSlots concurrent pins. A pin beyond capacity spins
/// (yielding) until a slot frees up — it cannot deadlock because every
/// Guard releases its slot in its destructor and slot holders never wait
/// for other pins.
class EpochDomain {
 public:
  static constexpr std::size_t kMaxSlots = 64;
  /// Slot value meaning "free": no reader is pinned through this slot.
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;
  /// Frees everything still retired. Caller must guarantee no pins are
  /// active and no further Retire() calls race the destructor.
  ~EpochDomain();

  /// RAII pin: holds one announcement slot for its lifetime. Movable so a
  /// snapshot handle can carry it; not copyable (a slot has one owner).
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& o) noexcept : domain_(o.domain_), slot_(o.slot_) {
      o.domain_ = nullptr;
    }
    Guard& operator=(Guard&& o) noexcept {
      if (this != &o) {
        Release();
        domain_ = o.domain_;
        slot_ = o.slot_;
        o.domain_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    [[nodiscard]] bool pinned() const { return domain_ != nullptr; }

   private:
    friend class EpochDomain;
    Guard(EpochDomain* domain, std::size_t slot)
        : domain_(domain), slot_(slot) {}
    void Release();

    EpochDomain* domain_ = nullptr;
    std::size_t slot_ = 0;
  };

  /// Pins the calling thread into the current epoch. After this returns,
  /// any pointer loaded from an epoch-protected atomic stays valid until
  /// the Guard is destroyed. Spins (with yield) when all slots are taken.
  [[nodiscard]] Guard Pin();

  /// Hands `garbage` to the domain; it runs once no pin can still observe
  /// the object it frees (two epoch advances from now). Thread-safe.
  void Retire(std::function<void()> garbage);

  /// Attempts one epoch advance: succeeds iff something is retired AND
  /// every pinned slot announces the current global epoch, then frees the
  /// newly unreachable bucket. Returns true if the epoch advanced. (The
  /// nothing-retired refusal is what makes the callers' drain loops
  /// `while (TryAdvance()) {}` terminate.) Thread-safe.
  [[nodiscard]] bool TryAdvance();

  /// Frees every retired bucket unconditionally. Caller must guarantee no
  /// pins are active (destructor path / single-threaded teardown).
  void ReclaimAll();

  [[nodiscard]] std::uint64_t global_epoch() const { return global_.load(); }
  /// Callbacks handed to Retire() and not yet run; for leak tests.
  [[nodiscard]] std::size_t retired_count() const;
  /// Pinned slots right now; for tests.
  [[nodiscard]] std::size_t active_pins() const;

 private:
  /// One announcement slot per cache line so pins on different cores do
  /// not false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
  };

  void Unpin(std::size_t slot) { slots_[slot].epoch.store(kIdle); }

  Slot slots_[kMaxSlots];
  std::atomic<std::uint64_t> global_{0};
  /// Buckets of retired callbacks, indexed by (retire epoch % 3).
  mutable Mutex retire_mu_;
  std::vector<std::function<void()>> buckets_[3] TLP_GUARDED_BY(retire_mu_);
};

}  // namespace tlp

#endif  // TLP_CONCURRENCY_EPOCH_H_
