#include "concurrency/versioned_grid.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "wal/durable_log.h"

namespace tlp {

namespace {

/// Advances (*chunk, *base) along the chain until the chunk containing op
/// index `target` — or the last allocated chunk when `target` is exactly
/// one chunk boundary past it (the next append will link the successor
/// before publishing any op a reader could seek to). Caller must hold the
/// writer mutex or a pin on a version whose window covers `target`.
void SeekChunk(std::shared_ptr<const DeltaChunk>* chunk, std::uint64_t* base,
               std::uint64_t target) {
  while (target >= *base + DeltaChunk::kCap && (*chunk)->next != nullptr) {
    *chunk = (*chunk)->next;
    *base += DeltaChunk::kCap;
  }
}

bool ById(const BoxEntry& a, const BoxEntry& b) { return a.id < b.id; }

bool ByRank(const RankedEntry& a, const RankedEntry& b) {
  return a.distance != b.distance ? a.distance < b.distance
                                  : a.entry.id < b.entry.id;
}

}  // namespace

ConcurrentTwoLayerGrid::ConcurrentTwoLayerGrid(TwoLayerGrid base)
    : ConcurrentTwoLayerGrid(std::move(base), Options()) {}

ConcurrentTwoLayerGrid::ConcurrentTwoLayerGrid(TwoLayerGrid base,
                                               Options options)
    : options_(options), merge_pool_(1) {
  if (base.frozen()) base.ThawStorage();
  auto owned = std::make_shared<TwoLayerGrid>(std::move(base));
  // Seed the live-id set: every object sits in class A of exactly one tile
  // (out-of-domain entries included — clamping assigns them a unique
  // lower-corner tile too).
  const GridLayout& layout = owned->layout();
  for (std::uint32_t j = 0; j < layout.ny(); ++j) {
    for (std::uint32_t i = 0; i < layout.nx(); ++i) {
      const auto span = owned->ClassSpan(i, j, ObjectClass::kA);
      for (std::size_t n = 0; n < span.second; ++n) {
        live_ids_.insert(span.first[n].id);
      }
    }
  }
  live_count_.store(live_ids_.size(), std::memory_order_relaxed);
  tail_ = std::make_shared<DeltaChunk>();
  published_.store(new Version{std::move(owned), tail_, 0, 0, 0});
}

ConcurrentTwoLayerGrid::~ConcurrentTwoLayerGrid() {
  // No readers or writers may be active here (class contract). Drain any
  // queued merge, then free the published version and all retired ones.
  try {
    merge_pool_.Wait();
  } catch (...) {
    // A failed merge leaves the previous version published — still a
    // consistent state; nothing to do beyond not throwing from a dtor.
  }
  delete published_.exchange(nullptr);
  epoch_.ReclaimAll();
}

bool ConcurrentTwoLayerGrid::Insert(const BoxEntry& entry) {
  bool applied = false;
  // With a WAL attached a failed append/fsync reports as "not applied" on
  // this legacy surface; callers that must distinguish (the serving eval
  // path) use InsertDurable directly.
  (void)InsertDurable(entry, &applied);
  return applied;
}

bool ConcurrentTwoLayerGrid::Delete(ObjectId id, const Box& box) {
  bool applied = false;
  (void)DeleteDurable(id, box, &applied);
  return applied;
}

void ConcurrentTwoLayerGrid::AttachWal(DurableLog* wal) {
  MutexLock lock(writer_mu_);
  if (total_ops_ != 0) {
    throw std::logic_error(
        "AttachWal: updates already applied without a log; the WAL history "
        "would not match the index history");
  }
  wal_ = wal;
  wal_base_ = wal->next_seq() - 1;
}

Status ConcurrentTwoLayerGrid::InsertDurable(const BoxEntry& entry,
                                             bool* applied) {
  *applied = false;
  std::uint64_t seq = 0;
  DurableLog* wal = nullptr;
  {
    MutexLock lock(writer_mu_);
    if (live_ids_.count(entry.id) != 0) return Status::OK();  // duplicate
    wal = wal_;
    if (wal != nullptr) {
      // Log before entering the delta log: an op a reader could ever see
      // must be on the path to durability. Append only buffers — failure
      // here leaves both log and index untouched.
      seq = wal_base_ + total_ops_ + 1;
      Status s = wal->Append(wal::MakeOp(/*insert=*/true, seq, entry));
      if (!s.ok()) return s;
    }
    live_ids_.insert(entry.id);
    AppendLocked(DeltaOp{DeltaOp::Kind::kInsert, entry});
    live_count_.store(live_ids_.size(), std::memory_order_relaxed);
  }
  *applied = true;
  // Group commit outside the writer mutex: concurrent writers keep
  // appending while one leader fsyncs a batch covering all of them.
  if (wal != nullptr) return wal->Sync(seq);
  return Status::OK();
}

Status ConcurrentTwoLayerGrid::DeleteDurable(ObjectId id, const Box& box,
                                             bool* applied) {
  *applied = false;
  std::uint64_t seq = 0;
  DurableLog* wal = nullptr;
  {
    MutexLock lock(writer_mu_);
    if (live_ids_.count(id) == 0) return Status::OK();  // not live
    wal = wal_;
    if (wal != nullptr) {
      seq = wal_base_ + total_ops_ + 1;
      Status s =
          wal->Append(wal::MakeOp(/*insert=*/false, seq, BoxEntry{box, id}));
      if (!s.ok()) return s;
    }
    live_ids_.erase(id);
    AppendLocked(DeltaOp{DeltaOp::Kind::kDelete, BoxEntry{box, id}});
    live_count_.store(live_ids_.size(), std::memory_order_relaxed);
  }
  *applied = true;
  if (wal != nullptr) return wal->Sync(seq);
  return Status::OK();
}

Status ConcurrentTwoLayerGrid::CheckpointWal() {
  DurableLog* log = wal();
  if (log == nullptr) return Status::OK();
  return log->WriteDeltaSnapshot(log->durable_seq());
}

Status ConcurrentTwoLayerGrid::CompactWal() {
  if (wal() == nullptr) return Status::OK();
  Flush();
  std::shared_ptr<const TwoLayerGrid> base;
  std::uint64_t seq = 0;
  DurableLog* log = nullptr;
  {
    MutexLock lock(writer_mu_);
    const Version& cur = *published_.load();
    if (cur.delta_begin != cur.delta_end) {
      return Status::InvalidArgument(
          "CompactWal: index not quiesced (ops appended during the flush)");
    }
    base = cur.base;
    seq = wal_base_ + cur.delta_end;
    log = wal_;
  }
  // `base` is immutable by protocol and the shared_ptr keeps it alive even
  // if another version publishes meanwhile.
  return log->Compact(*base, seq);
}

void ConcurrentTwoLayerGrid::AppendLocked(const DeltaOp& op) {
  const std::uint64_t idx = total_ops_;
  if (idx == tail_base_ + DeltaChunk::kCap) {
    auto fresh = std::make_shared<DeltaChunk>();
    // Plain writes: `fresh` and this `next` edge only become reachable to
    // readers through the version publication below (seq_cst exchange),
    // which orders them.
    tail_->next = fresh;
    tail_ = std::move(fresh);
    tail_base_ += DeltaChunk::kCap;
  }
  tail_->ops[idx - tail_base_] = op;
  ++total_ops_;
  const Version& cur = *published_.load();
  PublishLocked(new Version{cur.base, cur.delta_head, cur.head_base,
                            cur.delta_begin, total_ops_});
  MaybeScheduleMergeLocked();
}

void ConcurrentTwoLayerGrid::PublishLocked(const Version* v) {
  const Version* old = published_.exchange(v);
  if (old != nullptr) {
    epoch_.Retire([old] { delete old; });
    // Amortized reclamation: advance as far as current pins allow. Cheap
    // when readers are pinned (first slot mismatch returns false).
    while (epoch_.TryAdvance()) {
    }
  }
}

void ConcurrentTwoLayerGrid::MaybeScheduleMergeLocked() {
  if (merge_scheduled_) return;
  const Version& cur = *published_.load();
  if (cur.delta_end - cur.delta_begin < options_.merge_threshold) return;
  merge_scheduled_ = true;
  merge_pool_.Submit([this] { RunMerge(); });
}

void ConcurrentTwoLayerGrid::RunMerge() {
  std::shared_ptr<const TwoLayerGrid> base;
  std::shared_ptr<const DeltaChunk> chunk;
  std::uint64_t chunk_base = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  DurableLog* log = nullptr;
  {
    MutexLock lock(writer_mu_);
    const Version& cur = *published_.load();
    base = cur.base;
    chunk = cur.delta_head;
    chunk_base = cur.head_base;
    begin = cur.delta_begin;
    end = cur.delta_end;
    log = wal_;
  }
  try {
    // Clone and fold outside the mutex: ops [begin, end) and the base grid
    // are immutable, and the writer keeps appending (and publishing)
    // meanwhile. The clone goes through the ordinary sequential
    // Insert/Delete paths, which maintain occupancy and the segmented
    // class invariants op by op.
    auto fresh = std::make_shared<TwoLayerGrid>(*base);
    for (std::uint64_t idx = begin; idx < end; ++idx) {
      SeekChunk(&chunk, &chunk_base, idx);
      const DeltaOp& op = chunk->ops[idx - chunk_base];
      if (op.kind == DeltaOp::Kind::kInsert) {
        fresh->Insert(op.entry);
      } else {
        fresh->Delete(op.entry.id, op.entry.box);
      }
    }
    {
      MutexLock lock(writer_mu_);
      const Version& cur = *published_.load();
      std::shared_ptr<const DeltaChunk> head = cur.delta_head;
      std::uint64_t head_base = cur.head_base;
      SeekChunk(&head, &head_base, end);
      PublishLocked(new Version{std::move(fresh), std::move(head), head_base,
                                end, cur.delta_end});
      merge_scheduled_ = false;
      merges_completed_.fetch_add(1);
      // Appends during the merge may already exceed the threshold again.
      MaybeScheduleMergeLocked();
    }
    merged_cv_.NotifyAll();
    // Checkpoint cadence rides on the merge thread — the one background
    // thread this index owns — so delta snapshots never block a writer or
    // a reader. A failed checkpoint only leaves the low-water mark where
    // it was (recovery replays more log); persistent I/O failures surface
    // through the writers' own appends.
    if (log != nullptr && options_.wal_delta_every > 0) {
      const std::uint64_t durable = log->durable_seq();
      if (durable >= log->low_water_mark() + options_.wal_delta_every) {
        (void)log->WriteDeltaSnapshot(durable);
      }
    }
  } catch (...) {
    {
      MutexLock lock(writer_mu_);
      merge_scheduled_ = false;
    }
    merged_cv_.NotifyAll();
    throw;  // surfaces through ThreadPool::Wait in the destructor
  }
}

void ConcurrentTwoLayerGrid::Flush() {
  MutexLock lock(writer_mu_);
  for (;;) {
    const Version& cur = *published_.load();
    if (cur.delta_begin == cur.delta_end && !merge_scheduled_) return;
    if (!merge_scheduled_) {
      merge_scheduled_ = true;
      merge_pool_.Submit([this] { RunMerge(); });
    }
    merged_cv_.Wait(writer_mu_);
  }
}

ConcurrentTwoLayerGrid::Snapshot ConcurrentTwoLayerGrid::Acquire() const {
  // Pin first, then load: the epoch argument (docs/CONCURRENCY.md) shows a
  // version loaded after the announcement cannot be freed while the pin
  // lives.
  EpochDomain::Guard guard = epoch_.Pin();
  const Version* v = published_.load();
  return Snapshot(std::move(guard), v);
}

std::uint64_t ConcurrentTwoLayerGrid::published_seq() const {
  // Under the writer mutex the current version cannot retire (retirement
  // only happens in PublishLocked).
  MutexLock lock(writer_mu_);
  return published_.load()->delta_end;
}

ConcurrentTwoLayerGrid::Snapshot::Snapshot(EpochDomain::Guard guard,
                                           const Version* version)
    : guard_(std::move(guard)), version_(version) {
  // Materialize the last-op-wins overlay of the unmerged window. Ops are
  // replayed in log order, so the map holds each touched id's final state.
  std::shared_ptr<const DeltaChunk> chunk = version->delta_head;
  std::uint64_t base = version->head_base;
  for (std::uint64_t idx = version->delta_begin; idx < version->delta_end;
       ++idx) {
    SeekChunk(&chunk, &base, idx);
    const DeltaOp& op = chunk->ops[idx - base];
    overlay_[op.entry.id] =
        OverlayEntry{op.kind == DeltaOp::Kind::kInsert, op.entry.box};
  }
}

EntryPredicate ConcurrentTwoLayerGrid::Snapshot::BaseKeep(
    const EntryPredicate& keep) const {
  if (overlay_.empty()) return keep;
  return [this, keep](const BoxEntry& e) {
    if (overlay_.count(e.id) != 0) return false;  // overridden by the delta
    return !keep || keep(e);
  };
}

void ConcurrentTwoLayerGrid::Snapshot::WindowEntries(
    const Box& w, std::vector<BoxEntry>* out) const {
  out->clear();
  std::vector<Candidate> cands;
  base().WindowCandidates(w, &cands);
  out->reserve(cands.size());
  for (const Candidate& c : cands) {
    if (!Hidden(c.id)) out->push_back(BoxEntry{c.box, c.id});
  }
  for (const auto& [id, oe] : overlay_) {
    if (oe.present && oe.box.Intersects(w)) out->push_back(BoxEntry{oe.box, id});
  }
  std::sort(out->begin(), out->end(), ById);
}

void ConcurrentTwoLayerGrid::Snapshot::WindowQuery(
    const Box& w, std::vector<ObjectId>* out) const {
  out->clear();
  if (overlay_.empty()) {
    base().WindowQuery(w, out);
    std::sort(out->begin(), out->end());
    return;
  }
  std::vector<BoxEntry> entries;
  WindowEntries(w, &entries);
  out->reserve(entries.size());
  for (const BoxEntry& e : entries) out->push_back(e.id);
}

void ConcurrentTwoLayerGrid::Snapshot::DiskQueryEntries(
    const Point& q, Coord radius, std::vector<BoxEntry>* out) const {
  out->clear();
  base().DiskQueryEntries(q, radius, out);
  if (!overlay_.empty()) {
    std::erase_if(*out, [this](const BoxEntry& e) { return Hidden(e.id); });
    for (const auto& [id, oe] : overlay_) {
      if (oe.present && oe.box.MinDistanceTo(q) <= radius) {
        out->push_back(BoxEntry{oe.box, id});
      }
    }
  }
  std::sort(out->begin(), out->end(), ById);
}

std::vector<RankedEntry> ConcurrentTwoLayerGrid::Snapshot::KnnEntries(
    const Point& q, std::size_t k, const EntryPredicate& keep) const {
  // The hide-filter runs inside the base probe, so it returns the exact k
  // nearest *surviving* base entries; delta inserts can only add
  // candidates. The top-k of the union is therefore exact without
  // over-fetching.
  std::vector<RankedEntry> pool =
      tlp::KnnEntries(base(), q, k, BaseKeep(keep));
  if (overlay_.empty()) return pool;
  for (const auto& [id, oe] : overlay_) {
    if (!oe.present) continue;
    const BoxEntry e{oe.box, id};
    if (keep && !keep(e)) continue;
    pool.push_back(RankedEntry{e, e.box.MinDistanceTo(q)});
  }
  std::sort(pool.begin(), pool.end(), ByRank);
  if (pool.size() > k) pool.resize(k);
  return pool;
}

std::vector<SkylineEntry> ConcurrentTwoLayerGrid::Snapshot::SkylineQuery(
    const Point& q, const Box* region, const EntryPredicate& keep) const {
  // skyline(base' ∪ delta) ⊆ skyline(base') ∪ delta, where base' is the
  // base with overridden ids hidden *before* dominance runs (a hidden
  // entry must not evict anything). One base skyline plus a small
  // brute-force pass over the union is therefore exact.
  std::vector<SkylineEntry> cands =
      tlp::SkylineQuery(base(), q, region, BaseKeep(keep));
  if (overlay_.empty()) return cands;
  for (const auto& [id, oe] : overlay_) {
    if (!oe.present) continue;
    if (region != nullptr && !oe.box.Intersects(*region)) continue;
    const BoxEntry e{oe.box, id};
    if (keep && !keep(e)) continue;
    cands.push_back(
        SkylineEntry{e, SkylineAxisDistance(e.box.xl, e.box.xu, q.x),
                     SkylineAxisDistance(e.box.yl, e.box.yu, q.y)});
  }
  std::vector<SkylineEntry> sky;
  for (const SkylineEntry& c : cands) {
    const bool dominated =
        std::any_of(cands.begin(), cands.end(), [&](const SkylineEntry& o) {
          return SkylineDominates(o.dx, o.dy, c.dx, c.dy);
        });
    if (!dominated) sky.push_back(c);
  }
  std::sort(sky.begin(), sky.end(),
            [](const SkylineEntry& a, const SkylineEntry& b) {
              return a.entry.id < b.entry.id;
            });
  return sky;
}

std::vector<RankedEntry> ConcurrentTwoLayerGrid::Snapshot::DiversifiedKnnQuery(
    const Point& q, const DivKnnOptions& opts,
    const EntryPredicate& keep) const {
  if (opts.k == 0) return {};
  const std::vector<RankedEntry> pool =
      KnnEntries(q, ResolvedDivKnnFetch(opts), keep);
  return DiversifiedReRank(pool, opts.k, opts.lambda);
}

}  // namespace tlp
