#ifndef TLP_CONCURRENCY_VERSIONED_GRID_H_
#define TLP_CONCURRENCY_VERSIONED_GRID_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "concurrency/epoch.h"
#include "core/diversified_knn.h"
#include "core/entry_predicate.h"
#include "core/skyline.h"
#include "core/two_layer_grid.h"

namespace tlp {

class DurableLog;

/// One update in the append-only delta log.
struct DeltaOp {
  enum class Kind : unsigned char { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  BoxEntry entry;
};

/// Fixed-capacity node of the chunked delta log. Chunks are filled slot by
/// slot by the (mutex-serialized) writer and linked forward; a slot and a
/// `next` pointer are written strictly before the version publication that
/// makes them reachable, so readers never observe a slot they are allowed
/// to read being written (the happens-before edge is the seq_cst exchange
/// on the published version pointer).
struct DeltaChunk {
  static constexpr std::size_t kCap = 256;
  std::array<DeltaOp, kCap> ops;
  std::shared_ptr<DeltaChunk> next;
};

/// An immutable published state of the concurrent index: a frozen-by-
/// protocol base grid plus the window of delta-log ops not yet merged into
/// it. A Version object is never modified after publication; retiring it
/// (epoch-deferred delete) drops its shared_ptrs, which is what eventually
/// frees superseded base grids and consumed delta-chunk prefixes.
struct Version {
  std::shared_ptr<const TwoLayerGrid> base;
  /// Chunk holding op index `head_base` (<= delta_begin); the unmerged
  /// window is reached by walking `next` from here.
  std::shared_ptr<const DeltaChunk> delta_head;
  std::uint64_t head_base = 0;
  /// Global op indices [delta_begin, delta_end) overlay `base`. delta_end
  /// equals the total number of ops ever published, so it doubles as the
  /// version's logical sequence number.
  std::uint64_t delta_begin = 0;
  std::uint64_t delta_end = 0;
};

/// Concurrent wrapper around TwoLayerGrid where version-swap is the *only*
/// mutation path (ROADMAP item 1, docs/CONCURRENCY.md):
///
///   - Readers call Acquire() and query the returned Snapshot. A Snapshot
///     pins an epoch and holds the then-current Version; every query is
///     evaluated over (immutable base grid + unmerged delta overlay) and
///     is exact and duplicate-free (the base probes keep their Lemma 1-4
///     guarantees, the overlay is a last-op-wins map keyed by id).
///   - Insert/Delete serialize on a small writer mutex, append to the
///     chunked delta log, and publish a fresh Version per op.
///   - A background merge task (1-thread exception-safe ThreadPool) clones
///     the base, folds the delta window into it with the ordinary
///     sequential Insert/Delete paths, and publishes the merged Version.
///     Superseded Versions retire through the EpochDomain and are freed
///     once no reader pins them.
///
/// Thread safety: any number of concurrent Acquire()/query threads, any
/// number of concurrent Insert/Delete/Flush callers (serialized
/// internally), plus the internal merge thread. Construction and
/// destruction must be externally quiesced (no concurrent calls, no live
/// Snapshots).
class ConcurrentTwoLayerGrid {
 public:
  struct Options {
    /// Unmerged ops that trigger a background merge. The delta window a
    /// reader overlays stays bounded by roughly this plus one merge's
    /// worth of concurrent appends.
    std::size_t merge_threshold = 1024;
    /// With an attached WAL: durable ops beyond the log's low-water mark
    /// that make the background merge thread write a delta snapshot
    /// (docs/DURABILITY.md). 0 disables the automatic cadence (checkpoints
    /// then only happen through CheckpointWal/CompactWal).
    std::uint64_t wal_delta_every = 4096;
  };

  /// Takes ownership of `base` (thaws it first if frozen — served versions
  /// are immutable by protocol, not by the frozen flag, and the merge path
  /// needs mutable clones).
  explicit ConcurrentTwoLayerGrid(TwoLayerGrid base);
  ConcurrentTwoLayerGrid(TwoLayerGrid base, Options options);
  ~ConcurrentTwoLayerGrid();

  ConcurrentTwoLayerGrid(const ConcurrentTwoLayerGrid&) = delete;
  ConcurrentTwoLayerGrid& operator=(const ConcurrentTwoLayerGrid&) = delete;

  /// Inserts `entry`. Returns false (and changes nothing) when an object
  /// with this id is already live — the sequential index's "ids are
  /// unique" contract, enforced here so delta overlay semantics stay
  /// well-defined.
  [[nodiscard]] bool Insert(const BoxEntry& entry);

  /// Deletes object `id` (with the box it was inserted with, as in
  /// TwoLayerGrid::Delete). Returns false when no such object is live.
  [[nodiscard]] bool Delete(ObjectId id, const Box& box);

  /// Attaches the write-ahead log every subsequent update appends to
  /// before entering the delta log (docs/DURABILITY.md). Must be called
  /// before the first update (the log's committed history has to equal
  /// this index's op history); throws std::logic_error otherwise. The log
  /// must already reflect this index's base state (RecoverIndex, or a
  /// seeding Compact) and must outlive this object.
  void AttachWal(DurableLog* wal);

  /// Insert with durability: the op is logged, applied, and group-commit
  /// fsynced before OK returns — an OK with *applied true is a durable
  /// acknowledgment. A non-OK status means the update must NOT be
  /// acknowledged: the WAL rejected or failed to persist it (when the
  /// fsync itself failed the op may still be visible in memory; recovery
  /// replays a consistent prefix regardless). Without an attached WAL
  /// this is exactly Insert(). *applied false with OK = duplicate id.
  [[nodiscard]] Status InsertDurable(const BoxEntry& entry, bool* applied);

  /// Delete counterpart of InsertDurable. *applied false with OK = no
  /// such live object.
  [[nodiscard]] Status DeleteDurable(ObjectId id, const Box& box,
                                     bool* applied);

  /// Writes a WAL delta snapshot covering everything durable (O(changes);
  /// the cheap checkpoint a graceful shutdown performs). No-op without an
  /// attached WAL.
  [[nodiscard]] Status CheckpointWal();

  /// Flushes all ops into the base grid, then compacts the WAL into a
  /// full snapshot of it. Requires the index to be quiesced (no
  /// concurrent writers). No-op without an attached WAL.
  [[nodiscard]] Status CompactWal();

  /// The attached log (null when none) — for stats surfaces (WALSTATS).
  /// Takes the writer mutex briefly (the pointer itself is guarded; the
  /// log's own surfaces are internally synchronized).
  [[nodiscard]] DurableLog* wal() const TLP_EXCLUDES(writer_mu_) {
    MutexLock lock(writer_mu_);
    return wal_;
  }

  /// Blocks until every op published before the call is merged into the
  /// base grid (the published delta window is empty).
  void Flush() TLP_EXCLUDES(writer_mu_);

  /// A pinned, immutable view: epoch guard + Version + materialized
  /// last-op-wins overlay of the version's delta window. Queries mirror
  /// the sequential index's result contracts exactly (order included).
  /// Movable; keep it only as long as the query runs — a long-lived
  /// Snapshot stalls memory reclamation.
  class Snapshot {
   public:
    Snapshot(Snapshot&&) = default;
    Snapshot& operator=(Snapshot&&) = default;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;

    /// Logical sequence number: total update ops visible to this view.
    [[nodiscard]] std::uint64_t seq() const { return version_->delta_end; }
    /// The published base grid (excludes the delta overlay).
    [[nodiscard]] const TwoLayerGrid& base() const { return *version_->base; }
    /// Distinct object ids touched by the unmerged delta window.
    [[nodiscard]] std::size_t overlay_size() const { return overlay_.size(); }

    /// Ids of live objects intersecting `w`, sorted ascending.
    void WindowQuery(const Box& w, std::vector<ObjectId>* out) const;
    /// Entries of live objects intersecting `w`, sorted by id.
    void WindowEntries(const Box& w, std::vector<BoxEntry>* out) const;
    /// Entries of live objects with MinDistanceTo(q) <= radius, sorted by
    /// id.
    void DiskQueryEntries(const Point& q, Coord radius,
                          std::vector<BoxEntry>* out) const;
    /// The k nearest live entries matching `keep`, sorted by
    /// (distance, id) — same contract as tlp::KnnEntries.
    [[nodiscard]] std::vector<RankedEntry> KnnEntries(const Point& q, std::size_t k,
                                        const EntryPredicate& keep = {}) const;
    /// Skyline of the live set — same contract as tlp::SkylineQuery.
    [[nodiscard]] std::vector<SkylineEntry> SkylineQuery(
        const Point& q, const Box* region = nullptr,
        const EntryPredicate& keep = {}) const;
    /// Diversified kNN over the live set — same contract as
    /// tlp::DiversifiedKnnQuery.
    [[nodiscard]] std::vector<RankedEntry> DiversifiedKnnQuery(
        const Point& q, const DivKnnOptions& opts,
        const EntryPredicate& keep = {}) const;

   private:
    friend class ConcurrentTwoLayerGrid;
    /// Overlay value: the object's state after the delta window. `present`
    /// false means the window deleted it (the base entry, if any, is
    /// hidden); true means the window (re)inserted it with `box`.
    struct OverlayEntry {
      bool present = false;
      Box box;
    };

    Snapshot(EpochDomain::Guard guard, const Version* version);

    /// True iff the overlay overrides object `id` (hides its base entry).
    bool Hidden(ObjectId id) const {
      return !overlay_.empty() && overlay_.count(id) != 0;
    }
    /// `keep` composed with the overlay hide-filter, for base-grid probes.
    EntryPredicate BaseKeep(const EntryPredicate& keep) const;

    EpochDomain::Guard guard_;
    const Version* version_;
    std::unordered_map<ObjectId, OverlayEntry> overlay_;
  };

  /// Pins the current published version. Cheap-ish: O(delta window) to
  /// materialize the overlay map, which the merge threshold bounds.
  [[nodiscard]] Snapshot Acquire() const;

  /// Sequence number of the currently published version (test/monitoring
  /// aid; racy by nature).
  [[nodiscard]] std::uint64_t published_seq() const;
  /// Live objects (base + delta). Lock-free: reads an atomic counter the
  /// writer maintains, so monitoring surfaces (WALSTATS, the serve
  /// counters) never contend with the update path. Exact once writers
  /// quiesce; during concurrent updates it lags by at most the in-flight
  /// op.
  [[nodiscard]] std::size_t live_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  /// Completed background merges (test/monitoring aid).
  [[nodiscard]] std::uint64_t merges_completed() const {
    return merges_completed_.load();
  }
  /// Epoch domain, exposed for leak/retirement tests.
  [[nodiscard]] EpochDomain& epoch_domain() const { return epoch_; }

  /// The raw published Version pointer WITHOUT pinning an epoch. The
  /// pointee may be retired and freed at any moment; only the concurrency
  /// layer's own internals (which hold the writer mutex, under which
  /// retirement of the *current* version cannot happen) may touch it.
  /// tools/tlp_lint.py rule TLP005 rejects any use outside
  /// src/concurrency/ — everyone else must hold versions through a
  /// Snapshot.
  [[nodiscard]] const Version* unsafe_published_version() const {
    return published_.load();
  }

 private:
  /// Appends one op and publishes a Version exposing it (compiler-checked
  /// caller-holds-writer_mu_ contract).
  void AppendLocked(const DeltaOp& op) TLP_REQUIRES(writer_mu_);
  /// Publishes `v` (heap-allocated, ownership taken) and retires the
  /// previous version.
  void PublishLocked(const Version* v) TLP_REQUIRES(writer_mu_);
  /// Schedules a background merge if one is warranted and none is queued.
  void MaybeScheduleMergeLocked() TLP_REQUIRES(writer_mu_);
  /// The background merge task body. Takes writer_mu_ itself (twice,
  /// briefly); the clone-and-fold runs unlocked.
  void RunMerge() TLP_EXCLUDES(writer_mu_);

  const Options options_;

  mutable Mutex writer_mu_;
  /// Ids currently live (base + appended delta); gives Insert/Delete their
  /// found/duplicate return values without consulting the index.
  std::unordered_set<ObjectId> live_ids_ TLP_GUARDED_BY(writer_mu_);
  /// live_ids_.size(), mirrored for lock-free live_count().
  std::atomic<std::size_t> live_count_{0};
  /// Durability (null = not durable). wal_base_ + op index = WAL sequence;
  /// both set once by AttachWal before any update.
  DurableLog* wal_ TLP_GUARDED_BY(writer_mu_) = nullptr;
  std::uint64_t wal_base_ TLP_GUARDED_BY(writer_mu_) = 0;
  /// Chunk receiving the next append and the global index of its ops[0].
  std::shared_ptr<DeltaChunk> tail_ TLP_GUARDED_BY(writer_mu_);
  std::uint64_t tail_base_ TLP_GUARDED_BY(writer_mu_) = 0;
  std::uint64_t total_ops_ TLP_GUARDED_BY(writer_mu_) = 0;
  bool merge_scheduled_ TLP_GUARDED_BY(writer_mu_) = false;
  CondVar merged_cv_;

  std::atomic<const Version*> published_{nullptr};
  mutable EpochDomain epoch_;
  std::atomic<std::uint64_t> merges_completed_{0};

  /// Declared last: destroyed (joined) first, so no merge task can touch
  /// the members above during teardown.
  ThreadPool merge_pool_;
};

}  // namespace tlp

#endif  // TLP_CONCURRENCY_VERSIONED_GRID_H_
