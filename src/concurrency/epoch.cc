#include "concurrency/epoch.h"

#include <thread>
#include <utility>

namespace tlp {

EpochDomain::~EpochDomain() { ReclaimAll(); }

void EpochDomain::Guard::Release() {
  if (domain_ != nullptr) {
    domain_->Unpin(slot_);
    domain_ = nullptr;
  }
}

EpochDomain::Guard EpochDomain::Pin() {
  // Start probing at the slot this thread used last: uncontended pins hit
  // the same cache line every time instead of walking the array.
  thread_local std::size_t hint = 0;
  for (;;) {
    for (std::size_t n = 0; n < kMaxSlots; ++n) {
      const std::size_t s = (hint + n) % kMaxSlots;
      std::uint64_t e = global_.load();
      std::uint64_t expected = kIdle;
      if (!slots_[s].epoch.compare_exchange_strong(expected, e)) continue;
      // The global may have advanced between reading it and claiming the
      // slot; re-announce until the announcement matches. Without this a
      // pin could sit one epoch behind forever and stall reclamation.
      for (;;) {
        const std::uint64_t g = global_.load();
        if (g == e) break;
        e = g;
        slots_[s].epoch.store(e);
      }
      hint = s;
      return Guard(this, s);
    }
    std::this_thread::yield();
  }
}

void EpochDomain::Retire(std::function<void()> garbage) {
  MutexLock lock(retire_mu_);
  // Read the epoch under the mutex: the tag must not lag the true retire
  // epoch by more than the one benign step the safety argument absorbs
  // (docs/CONCURRENCY.md "Reclamation safety").
  const std::uint64_t e = global_.load();
  buckets_[e % 3].push_back(std::move(garbage));
}

bool EpochDomain::TryAdvance() {
  {
    // Advancing exists to free garbage; with nothing retired anywhere it
    // would succeed unconditionally (no pinned reader can be "behind"
    // forever) and turn the callers' `while (TryAdvance()) {}` drain loops
    // into livelocks. Refuse instead.
    MutexLock lock(retire_mu_);
    if (buckets_[0].empty() && buckets_[1].empty() && buckets_[2].empty()) {
      return false;
    }
  }
  std::uint64_t g = global_.load();
  for (const Slot& s : slots_) {
    const std::uint64_t v = s.epoch.load();
    if (v != kIdle && v != g) return false;  // a reader is still behind
  }
  if (!global_.compare_exchange_strong(g, g + 1)) return false;
  // New global G = g + 1: retirees of epoch G - 2 are unreachable — every
  // active pin announces >= G - 1 and any reader that could have loaded
  // such an object has unpinned.
  std::vector<std::function<void()>> dead;
  {
    MutexLock lock(retire_mu_);
    dead.swap(buckets_[(g + 2) % 3]);  // ((G - 2) % 3) == ((g + 2) % 3)
  }
  for (auto& fn : dead) fn();
  return true;
}

void EpochDomain::ReclaimAll() {
  std::vector<std::function<void()>> dead;
  {
    MutexLock lock(retire_mu_);
    for (auto& bucket : buckets_) {
      for (auto& fn : bucket) dead.push_back(std::move(fn));
      bucket.clear();
    }
  }
  for (auto& fn : dead) fn();
}

std::size_t EpochDomain::retired_count() const {
  MutexLock lock(retire_mu_);
  return buckets_[0].size() + buckets_[1].size() + buckets_[2].size();
}

std::size_t EpochDomain::active_pins() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.epoch.load() != kIdle) ++n;
  }
  return n;
}

}  // namespace tlp
