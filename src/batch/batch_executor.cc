#include "batch/batch_executor.h"

#include <algorithm>

#include "common/query_stats.h"
#include "common/thread_pool.h"

namespace tlp {

namespace {

/// Per-tile subtask index built by counting sort: subtasks of tile t are the
/// queries in `query_of[tile_offset[t] .. tile_offset[t+1])`. Counting sort
/// (not comparison sort) keeps the accumulation step linear in the number of
/// subtasks, which matters for large batches of large queries.
struct SubtaskIndex {
  std::vector<std::size_t> tile_offset;  // size tile_count + 1
  std::vector<std::uint32_t> query_of;   // size = total subtasks
};

void BuildSubtasks(const GridLayout& layout, const std::vector<Box>& queries,
                   SubtaskIndex* index, std::vector<TileRange>* ranges) {
  ranges->resize(queries.size());
  index->tile_offset.assign(layout.tile_count() + 1, 0);
  for (std::size_t k = 0; k < queries.size(); ++k) {
    (*ranges)[k] = layout.TilesFor(queries[k]);
    const TileRange& r = (*ranges)[k];
    for (std::uint32_t j = r.j0; j <= r.j1; ++j) {
      for (std::uint32_t i = r.i0; i <= r.i1; ++i) {
        ++index->tile_offset[layout.TileId(i, j) + 1];
      }
    }
  }
  for (std::size_t t = 1; t < index->tile_offset.size(); ++t) {
    index->tile_offset[t] += index->tile_offset[t - 1];
  }
  index->query_of.resize(index->tile_offset.back());
  std::vector<std::size_t> cursor(index->tile_offset.begin(),
                                  index->tile_offset.end() - 1);
  for (std::size_t k = 0; k < queries.size(); ++k) {
    const TileRange& r = (*ranges)[k];
    for (std::uint32_t j = r.j0; j <= r.j1; ++j) {
      for (std::uint32_t i = r.i0; i <= r.i1; ++i) {
        index->query_of[cursor[layout.TileId(i, j)]++] =
            static_cast<std::uint32_t>(k);
      }
    }
  }
}

}  // namespace

std::vector<std::uint32_t> BatchExecutor::RunQueriesBased(
    const TwoLayerGrid& grid, const std::vector<Box>& queries,
    std::size_t num_threads) {
  std::vector<std::uint32_t> counts(queries.size(), 0);
  if (num_threads <= 1) {
    std::vector<ObjectId> out;
    for (std::size_t k = 0; k < queries.size(); ++k) {
      out.clear();
      grid.WindowQuery(queries[k], &out);
      counts[k] = static_cast<std::uint32_t>(out.size());
    }
    return counts;
  }
  ThreadPool pool(num_threads);
  // Per-task stats sinks: each worker drains its thread-local accumulator
  // into its own slot, and the merged total lands on the calling thread
  // after Wait() so batch callers observe batch-wide counters.
  std::vector<QueryStats> task_stats(num_threads);
  // Round-robin assignment (paper §VI): thread t evaluates queries
  // t, t + T, t + 2T, ...
  for (std::size_t t = 0; t < num_threads; ++t) {
    pool.Submit([&, t] {
      std::vector<ObjectId> out;
      for (std::size_t k = t; k < queries.size(); k += num_threads) {
        out.clear();
        grid.WindowQuery(queries[k], &out);
        counts[k] = static_cast<std::uint32_t>(out.size());
      }
      DrainQueryStatsInto(&task_stats[t]);
    });
  }
  pool.Wait();
  for (const QueryStats& s : task_stats) MergeQueryStats(s);
  return counts;
}

std::vector<std::uint32_t> BatchExecutor::RunTilesBased(
    const TwoLayerGrid& grid, const std::vector<Box>& queries,
    std::size_t num_threads) {
  const GridLayout& layout = grid.layout();
  SubtaskIndex index;
  std::vector<TileRange> ranges;
  BuildSubtasks(layout, queries, &index, &ranges);

  std::vector<std::uint32_t> counts(queries.size(), 0);
  // Processes the subtasks of tiles [tile_begin, tile_end); one reusable
  // output buffer keeps each tile's secondary partitions hot across all of
  // its subtasks.
  auto process = [&](std::size_t tile_begin, std::size_t tile_end,
                     std::vector<std::uint32_t>& local_counts) {
    std::vector<ObjectId> out;
    for (std::size_t t = tile_begin; t < tile_end; ++t) {
      const std::size_t begin = index.tile_offset[t];
      const std::size_t end = index.tile_offset[t + 1];
      if (begin == end) continue;
      const auto i = static_cast<std::uint32_t>(t % layout.nx());
      const auto j = static_cast<std::uint32_t>(t / layout.nx());
      for (std::size_t s = begin; s < end; ++s) {
        const std::uint32_t q = index.query_of[s];
        out.clear();
        grid.WindowQueryTile(i, j, queries[q], ranges[q], &out);
        local_counts[q] += static_cast<std::uint32_t>(out.size());
      }
    }
  };

  if (num_threads <= 1) {
    process(0, layout.tile_count(), counts);
    return counts;
  }

  // Partition tiles into spans with balanced subtask counts; a tile is never
  // shared between threads.
  const std::size_t total = index.query_of.size();
  const std::size_t target = (total + num_threads - 1) / num_threads;
  std::vector<std::size_t> cuts{0};
  for (std::size_t t = 1; t < num_threads; ++t) {
    const auto it = std::lower_bound(index.tile_offset.begin(),
                                     index.tile_offset.end(), t * target);
    cuts.push_back(static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - index.tile_offset.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     layout.tile_count()))));
  }
  cuts.push_back(layout.tile_count());

  std::vector<std::vector<std::uint32_t>> local(
      cuts.size() - 1, std::vector<std::uint32_t>(queries.size(), 0));
  std::vector<QueryStats> task_stats(cuts.size() - 1);
  ThreadPool pool(num_threads);
  for (std::size_t t = 0; t + 1 < cuts.size(); ++t) {
    if (cuts[t] >= cuts[t + 1]) continue;
    pool.Submit([&, t] {
      process(cuts[t], cuts[t + 1], local[t]);
      DrainQueryStatsInto(&task_stats[t]);
    });
  }
  pool.Wait();
  for (const QueryStats& s : task_stats) MergeQueryStats(s);
  for (const auto& l : local) {
    for (std::size_t k = 0; k < counts.size(); ++k) counts[k] += l[k];
  }
  return counts;
}

std::vector<std::vector<ObjectId>> BatchExecutor::CollectQueriesBased(
    const TwoLayerGrid& grid, const std::vector<Box>& queries) {
  std::vector<std::vector<ObjectId>> results(queries.size());
  for (std::size_t k = 0; k < queries.size(); ++k) {
    grid.WindowQuery(queries[k], &results[k]);
  }
  return results;
}

std::vector<std::vector<ObjectId>> BatchExecutor::CollectTilesBased(
    const TwoLayerGrid& grid, const std::vector<Box>& queries) {
  const GridLayout& layout = grid.layout();
  SubtaskIndex index;
  std::vector<TileRange> ranges;
  BuildSubtasks(layout, queries, &index, &ranges);
  std::vector<std::vector<ObjectId>> results(queries.size());
  for (std::size_t t = 0; t < layout.tile_count(); ++t) {
    const auto i = static_cast<std::uint32_t>(t % layout.nx());
    const auto j = static_cast<std::uint32_t>(t / layout.nx());
    for (std::size_t s = index.tile_offset[t]; s < index.tile_offset[t + 1];
         ++s) {
      const std::uint32_t q = index.query_of[s];
      grid.WindowQueryTile(i, j, queries[q], ranges[q], &results[q]);
    }
  }
  return results;
}

}  // namespace tlp
