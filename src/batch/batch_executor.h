#ifndef TLP_BATCH_BATCH_EXECUTOR_H_
#define TLP_BATCH_BATCH_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/two_layer_grid.h"

namespace tlp {

/// Batch evaluation strategies of paper §VI for a workload of concurrent
/// window queries over a two-layer grid.
///
/// * Queries-based: evaluate each query independently; parallel execution
///   assigns queries to threads round-robin. Cache-agnostic.
/// * Tiles-based: first accumulate, per tile, the subtasks of all queries
///   that intersect it; then process tile by tile, so each tile's secondary
///   partitions are touched once while hot in cache. Parallel execution
///   assigns tile groups to threads.
///
/// Both return per-query result counts; CollectResults variants return the
/// full id lists (used by tests to prove result equivalence).
class BatchExecutor {
 public:
  /// Evaluates `queries` one by one with `num_threads` workers; returns the
  /// result count of each query.
  static std::vector<std::uint32_t> RunQueriesBased(
      const TwoLayerGrid& grid, const std::vector<Box>& queries,
      std::size_t num_threads);

  /// Cache-conscious two-step evaluation (§VI); returns per-query counts.
  static std::vector<std::uint32_t> RunTilesBased(
      const TwoLayerGrid& grid, const std::vector<Box>& queries,
      std::size_t num_threads);

  /// Sequential variants that collect full per-query result id lists.
  static std::vector<std::vector<ObjectId>> CollectQueriesBased(
      const TwoLayerGrid& grid, const std::vector<Box>& queries);
  static std::vector<std::vector<ObjectId>> CollectTilesBased(
      const TwoLayerGrid& grid, const std::vector<Box>& queries);
};

}  // namespace tlp

#endif  // TLP_BATCH_BATCH_EXECUTOR_H_
