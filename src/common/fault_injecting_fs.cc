#include "common/fault_injecting_fs.h"

#include <algorithm>
#include <utility>

namespace tlp {

/// Routes a WritableFile's operations back through the owning fs's fault
/// counter, so Append/Sync/Close are injectable like any other op. At
/// namespace scope (not file-local) to match the friend declaration that
/// grants it access to FaultInjectingFs::Count.
class FaultInjectingWritableFile final : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingFs* fs, std::string path,
                             std::unique_ptr<WritableFile> base)
      : fs_(fs), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const void* data, std::size_t n) override;
  Status WriteAt(std::uint64_t offset, const void* data,
                 std::size_t n) override;
  Status Sync() override;
  Status Close() override;

 private:
  FaultInjectingFs* const fs_;
  const std::string path_;
  std::unique_ptr<WritableFile> base_;
};

const char* FaultInjectingFs::OpName(Op op) {
  switch (op) {
    case Op::kNewWritableFile: return "create";
    case Op::kAppend: return "append";
    case Op::kWriteAt: return "write-at";
    case Op::kSync: return "sync";
    case Op::kClose: return "close";
    case Op::kReadFile: return "read";
    case Op::kMap: return "map";
    case Op::kRename: return "rename";
    case Op::kRemove: return "remove";
    case Op::kSyncDir: return "sync-dir";
    case Op::kTruncate: return "truncate";
    case Op::kListDir: return "list-dir";
  }
  return "unknown";
}

bool FaultInjectingFs::ParseOp(const std::string& name, Op* out) {
  for (const Op op :
       {Op::kNewWritableFile, Op::kAppend, Op::kWriteAt, Op::kSync,
        Op::kClose, Op::kReadFile, Op::kMap, Op::kRename, Op::kRemove,
        Op::kSyncDir, Op::kTruncate, Op::kListDir}) {
    if (name == OpName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

FaultInjectingFs::FaultInjectingFs(FileSystem* base)
    : base_(ResolveFs(base)) {}

void FaultInjectingFs::FailOperation(std::uint64_t k) {
  MutexLock lock(mutex_);
  fail_op_armed_ = true;
  fail_op_index_ = k;
}

void FaultInjectingFs::FailNextOf(Op op) {
  MutexLock lock(mutex_);
  fail_kind_armed_ = true;
  fail_kind_ = op;
}

void FaultInjectingFs::ShortWriteAt(std::uint64_t k, std::size_t bytes) {
  MutexLock lock(mutex_);
  short_write_armed_ = true;
  short_write_index_ = k;
  short_write_bytes_ = bytes;
}

void FaultInjectingFs::Reset() {
  MutexLock lock(mutex_);
  next_op_ = 0;
  log_.clear();
  fault_fired_ = false;
  fail_op_armed_ = fail_kind_armed_ = short_write_armed_ = false;
}

std::uint64_t FaultInjectingFs::op_count() const {
  MutexLock lock(mutex_);
  return next_op_;
}

bool FaultInjectingFs::fault_fired() const {
  MutexLock lock(mutex_);
  return fault_fired_;
}

std::vector<FaultInjectingFs::Op> FaultInjectingFs::OperationLog() const {
  MutexLock lock(mutex_);
  return log_;
}

Status FaultInjectingFs::Count(Op op, const std::string& path,
                               std::size_t* short_write_bytes) {
  MutexLock lock(mutex_);
  const std::uint64_t index = next_op_++;
  log_.push_back(op);
  if (short_write_armed_ && index == short_write_index_ &&
      op == Op::kAppend && short_write_bytes != nullptr) {
    short_write_armed_ = false;
    fault_fired_ = true;
    *short_write_bytes = short_write_bytes_;
    return Status::IoError(path + ": injected short write (op " +
                           std::to_string(index) + ")");
  }
  if (fail_op_armed_ && index == fail_op_index_) {
    fail_op_armed_ = false;
    fault_fired_ = true;
    return Status::IoError(path + ": injected fault: " +
                           std::string(OpName(op)) + " failed at op " +
                           std::to_string(index) +
                           " (No space left on device)");
  }
  if (fail_kind_armed_ && op == fail_kind_) {
    fail_kind_armed_ = false;
    fault_fired_ = true;
    return Status::IoError(path + ": injected fault: " +
                           std::string(OpName(op)) + " failed at op " +
                           std::to_string(index));
  }
  return Status::OK();
}

Status FaultInjectingWritableFile::Append(const void* data, std::size_t n) {
  std::size_t short_bytes = 0;
  Status s = fs_->Count(FaultInjectingFs::Op::kAppend, path_, &short_bytes);
  if (!s.ok()) {
    // A short write leaves a prefix in the file — exactly the torn state a
    // crash mid-write(2) produces — before reporting the failure.
    if (short_bytes > 0) {
      (void)base_->Append(data, std::min(short_bytes, n)).ok();
      (void)base_->Close().ok();
    }
    return s;
  }
  return base_->Append(data, n);
}

Status FaultInjectingWritableFile::WriteAt(std::uint64_t offset,
                                           const void* data, std::size_t n) {
  Status s = fs_->Count(FaultInjectingFs::Op::kWriteAt, path_);
  if (!s.ok()) return s;
  return base_->WriteAt(offset, data, n);
}

Status FaultInjectingWritableFile::Sync() {
  Status s = fs_->Count(FaultInjectingFs::Op::kSync, path_);
  if (!s.ok()) return s;
  return base_->Sync();
}

Status FaultInjectingWritableFile::Close() {
  Status s = fs_->Count(FaultInjectingFs::Op::kClose, path_);
  if (!s.ok()) return s;
  return base_->Close();
}

Status FaultInjectingFs::NewWritableFile(const std::string& path,
                                         std::unique_ptr<WritableFile>* out) {
  Status s = Count(Op::kNewWritableFile, path);
  if (!s.ok()) return s;
  std::unique_ptr<WritableFile> base_file;
  s = base_->NewWritableFile(path, &base_file);
  if (!s.ok()) return s;
  *out = std::make_unique<FaultInjectingWritableFile>(this, path,
                                                      std::move(base_file));
  return Status::OK();
}

Status FaultInjectingFs::ReadFile(const std::string& path,
                                  std::vector<unsigned char>* out) {
  Status s = Count(Op::kReadFile, path);
  if (!s.ok()) return s;
  return base_->ReadFile(path, out);
}

Status FaultInjectingFs::MapReadOnly(const std::string& path,
                                     MappedFile* out) {
  Status s = Count(Op::kMap, path);
  if (!s.ok()) return s;
  return base_->MapReadOnly(path, out);
}

Status FaultInjectingFs::RenameFile(const std::string& from,
                                    const std::string& to) {
  Status s = Count(Op::kRename, from);
  if (!s.ok()) return s;
  return base_->RenameFile(from, to);
}

Status FaultInjectingFs::RemoveFile(const std::string& path) {
  Status s = Count(Op::kRemove, path);
  if (!s.ok()) return s;
  return base_->RemoveFile(path);
}

Status FaultInjectingFs::SyncDir(const std::string& path) {
  Status s = Count(Op::kSyncDir, path);
  if (!s.ok()) return s;
  return base_->SyncDir(path);
}

Status FaultInjectingFs::Truncate(const std::string& path,
                                  std::uint64_t size) {
  Status s = Count(Op::kTruncate, path);
  if (!s.ok()) return s;
  return base_->Truncate(path, size);
}

bool FaultInjectingFs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingFs::ListDir(const std::string& path,
                                 std::vector<std::string>* names) {
  Status s = Count(Op::kListDir, path);
  if (!s.ok()) return s;
  return base_->ListDir(path, names);
}

}  // namespace tlp
