#ifndef TLP_COMMON_FILE_SYSTEM_H_
#define TLP_COMMON_FILE_SYSTEM_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace tlp {

/// A file being written through a FileSystem. Writes buffer in userspace;
/// nothing is guaranteed on stable storage until Sync() returns OK. Errors
/// are returned, never thrown — a full disk is an expected condition for a
/// serving system, not an exceptional one.
class WritableFile {
 public:
  virtual ~WritableFile();

  /// Appends `n` bytes at the current end of file.
  virtual Status Append(const void* data, std::size_t n) = 0;

  /// Writes `n` bytes at absolute `offset` (used for the snapshot header
  /// rewrite). Does not move the append position.
  virtual Status WriteAt(std::uint64_t offset, const void* data,
                         std::size_t n) = 0;

  /// Flushes userspace buffers and fsync()s file contents to stable
  /// storage. After OK, the bytes written so far survive a crash.
  virtual Status Sync() = 0;

  /// Flushes and closes. Idempotent; the destructor closes (best effort,
  /// errors dropped) if the caller never did.
  virtual Status Close() = 0;
};

/// Pluggable filesystem boundary (LevelDB's Env pattern): every file
/// operation the persistence and dataset-I/O layers perform goes through
/// this interface, so tests can substitute a FaultInjectingFs and make
/// ENOSPC, short writes, fsync failures, and crash points reproducible in
/// unit tests. Production code uses Default(), the POSIX implementation.
///
/// All methods are thread-safe in the POSIX implementation; a WritableFile
/// itself must only be used from one thread at a time.
class FileSystem {
 public:
  virtual ~FileSystem();

  /// The process-wide POSIX filesystem. Never null; not owned.
  static FileSystem* Default();

  /// Creates (or truncates) `path` for writing.
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;

  /// Reads the entire regular file at `path` into `*out`.
  virtual Status ReadFile(const std::string& path,
                          std::vector<unsigned char>* out) = 0;

  /// Memory-maps `path` read-only (zero-copy snapshot loads).
  virtual Status MapReadOnly(const std::string& path, MappedFile* out) = 0;

  /// Atomically renames `from` onto `to` (POSIX rename(2) semantics: `to`
  /// is replaced as a unit; readers see the old file or the new one, never
  /// a mix). The final step of a crash-safe snapshot save.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes `path`. Removing a file that does not exist is an error.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// fsync()s the directory at `path`, persisting directory entries created
  /// or renamed inside it (without this a power loss can forget a
  /// just-renamed file even though its contents were synced).
  virtual Status SyncDir(const std::string& path) = 0;

  /// Truncates the regular file at `path` to its first `size` bytes.
  virtual Status Truncate(const std::string& path, std::uint64_t size) = 0;

  /// True when `path` exists (any file type).
  virtual bool FileExists(const std::string& path) = 0;

  /// Lists the entry names (not paths; "." and ".." excluded) of the
  /// directory at `path`.
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* names) = 0;
};

/// The directory part of `path` ("." when it has none) — where SyncDir must
/// point after renaming `path` into place.
std::string DirnameOf(const std::string& path);

/// Resolves an optional filesystem argument: `fs` when non-null, else
/// FileSystem::Default(). The persistence entry points take `FileSystem*`
/// defaulted to nullptr so ordinary callers never mention the abstraction.
inline FileSystem* ResolveFs(FileSystem* fs) {
  return fs != nullptr ? fs : FileSystem::Default();
}

}  // namespace tlp

#endif  // TLP_COMMON_FILE_SYSTEM_H_
