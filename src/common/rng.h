#ifndef TLP_COMMON_RNG_H_
#define TLP_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace tlp {

/// SplitMix64: used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality PRNG for workload generation. We do not
/// use std::mt19937 because generator state/speed matters when producing
/// multi-million-object datasets in benchmarks.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2a5f95bc1d3cULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t NextBelow(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = -n % n;
      while (l < t) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (no cached spare; simple and stateless).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Zipf(a) sampler over ranks {0, .., n-1} with precomputed inverse CDF.
/// Used for the paper's zipfian synthetic distribution (Table IV, a = 1).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha) : cdf_(n) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
      cdf_[i] = sum;
    }
    for (auto& v : cdf_) v /= sum;
  }

  /// Draws a rank in [0, n); rank 0 is the most likely.
  std::size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first cdf entry >= u.
    std::size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace tlp

#endif  // TLP_COMMON_RNG_H_
