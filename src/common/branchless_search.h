#ifndef TLP_COMMON_BRANCHLESS_SEARCH_H_
#define TLP_COMMON_BRANCHLESS_SEARCH_H_

#include <algorithm>
#include <cstddef>

namespace tlp {

#if defined(__GNUC__) || defined(__clang__)
#define TLP_PREFETCH(addr) __builtin_prefetch(addr)
#else
#define TLP_PREFETCH(addr) ((void)0)
#endif

/// Tables at or below this size take the plain std::lower_bound/upper_bound
/// path: they span a handful of cache lines, their probes predict well, and
/// the cmov loop's serialized data-dependent loads cost more than the
/// mispredicts it avoids. Fine-granularity grids put most per-tile tables
/// under this bound; the branchless loop pays off on the long tables of
/// coarse layouts.
inline constexpr std::size_t kBranchlessSearchMinSize = 64;

/// Branchless binary searches over a sorted array. Above
/// kBranchlessSearchMinSize, each halving step updates the base with a
/// conditional move instead of a taken/not-taken branch, so the pipeline
/// never mispredicts on random probe outcomes, and both possible next probes
/// are prefetched one step ahead. Returns exactly what std::lower_bound /
/// std::upper_bound return (as an index); the 2-layer+ EvaluateClass
/// searches run through these (paper §IV-C — the binary search over a
/// decomposed coordinate table is the per-tile hot operation).
///
/// First index in [0, n) with a[i] >= key, or n if none.
template <typename T>
inline std::size_t BranchlessLowerBound(const T* a, std::size_t n,
                                        const T& key) {
  if (n == 0) return 0;
  if (n <= kBranchlessSearchMinSize) {
    return static_cast<std::size_t>(std::lower_bound(a, a + n, key) - a);
  }
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len / 2;
    TLP_PREFETCH(&a[lo + half / 2]);
    TLP_PREFETCH(&a[lo + half + (len - half) / 2]);
    // Compiles to a conditional move: probe below key => discard low half.
    lo += (a[lo + half - 1] < key) ? half : 0;
    len -= half;
  }
  return (a[lo] < key) ? lo + 1 : lo;
}

/// First index in [0, n) with a[i] > key, or n if none.
template <typename T>
inline std::size_t BranchlessUpperBound(const T* a, std::size_t n,
                                        const T& key) {
  if (n == 0) return 0;
  if (n <= kBranchlessSearchMinSize) {
    return static_cast<std::size_t>(std::upper_bound(a, a + n, key) - a);
  }
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len / 2;
    TLP_PREFETCH(&a[lo + half / 2]);
    TLP_PREFETCH(&a[lo + half + (len - half) / 2]);
    lo += (a[lo + half - 1] <= key) ? half : 0;
    len -= half;
  }
  return (a[lo] <= key) ? lo + 1 : lo;
}

#undef TLP_PREFETCH

}  // namespace tlp

#endif  // TLP_COMMON_BRANCHLESS_SEARCH_H_
