#ifndef TLP_COMMON_TIMER_H_
#define TLP_COMMON_TIMER_H_

#include <chrono>

namespace tlp {

/// Monotonic wall-clock stopwatch used by benchmark harnesses and the
/// distributed-execution simulator.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tlp

#endif  // TLP_COMMON_TIMER_H_
