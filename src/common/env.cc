#include "common/env.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace tlp {

std::int64_t EnvInt64(const std::string& name, std::int64_t fallback) {
  // getenv is safe here: nothing in the tree calls setenv after main()
  // starts (the one setenv user is a test's single-threaded setup).
  const char* raw = std::getenv(name.c_str());  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

double EnvDouble(const std::string& name, double fallback) {
  // See EnvInt64 on why getenv is safe in this tree.
  const char* raw = std::getenv(name.c_str());  // NOLINT(concurrency-mt-unsafe)
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

double DatasetScale() { return EnvDouble("TLP_SCALE", 1.0); }

namespace {

// glibc with _GNU_SOURCE gives the GNU strerror_r (returns char*, may
// ignore the buffer); POSIX gives the int-returning one (always fills the
// buffer). Overload resolution picks the right unpacking at compile time,
// so ErrnoMessage builds against either without feature-test contortions.
inline const char* StrerrorResult(const char* r, const char* /*buf*/) {
  return r;
}
inline const char* StrerrorResult(int r, const char* buf) {
  return r == 0 ? buf : "Unknown error";
}

}  // namespace

std::string ErrnoMessage(int err) {
  char buf[256];
  buf[0] = '\0';
  return StrerrorResult(strerror_r(err, buf, sizeof buf), buf);
}

namespace {

std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = MakeCrc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

MappedFile::~MappedFile() { Close(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      valid_(std::exchange(other.valid_, false)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    valid_ = std::exchange(other.valid_, false);
  }
  return *this;
}

void MappedFile::Close() {
  if (data_ != nullptr) ::munmap(data_, size_);
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
}

bool MappedFile::Open(const std::string& path, MappedFile* out,
                      std::string* error) {
  out->Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) {
      *error = path + ": open failed: " + ErrnoMessage(errno);
    }
    return false;
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) {
      *error = path + ": fstat failed: " + ErrnoMessage(errno);
    }
    ::close(fd);
    return false;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    // mmap(0) is invalid; an empty file is a valid (empty) mapping.
    ::close(fd);
    out->valid_ = true;
    return true;
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference to the file.
  if (addr == MAP_FAILED) {
    if (error != nullptr) {
      *error = path + ": mmap failed: " + ErrnoMessage(errno);
    }
    return false;
  }
  out->data_ = static_cast<unsigned char*>(addr);
  out->size_ = size;
  out->valid_ = true;
  return true;
}

}  // namespace tlp
