#include "common/env.h"

#include <cstdlib>

namespace tlp {

std::int64_t EnvInt64(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::int64_t>(value);
}

double EnvDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return value;
}

double DatasetScale() { return EnvDouble("TLP_SCALE", 1.0); }

}  // namespace tlp
