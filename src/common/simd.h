#ifndef TLP_COMMON_SIMD_H_
#define TLP_COMMON_SIMD_H_

#include <cstddef>
#include <limits>

#include "common/types.h"

// Compile-time SIMD backend selection for the query hot path. The CMake
// option TLP_SIMD (default ON) defines TLP_SIMD_ENABLED; the instruction set
// the translation unit is compiled for then picks the backend:
//
//   TLP_SIMD_BACKEND_AVX2   x86-64 with AVX2 (-march=native Release builds)
//   TLP_SIMD_BACKEND_NEON   AArch64 with Advanced SIMD
//   (neither)               scalar fallback, always built and always correct
//
// TLP_SIMD_VECTORIZED is defined whenever a vector backend is active. The
// vector kernels are compiled regardless of the query-stats layer so the
// differential tests (tests/simd_test.cc) can exercise them in every build;
// whether the *query paths* route through them is decided where they are
// used (grid/scan.h): the scalar loops carry per-comparison stats accounting
// that a vector kernel cannot reproduce exactly, so instrumented
// (TLP_STATS=ON) builds keep the scalar scans and their counter semantics.
#if defined(TLP_SIMD_ENABLED) && defined(__AVX2__)
#define TLP_SIMD_BACKEND_AVX2 1
#define TLP_SIMD_VECTORIZED 1
#elif defined(TLP_SIMD_ENABLED) && defined(__ARM_NEON) && defined(__aarch64__)
#define TLP_SIMD_BACKEND_NEON 1
#define TLP_SIMD_VECTORIZED 1
#endif

#if defined(TLP_SIMD_BACKEND_AVX2)
#include <immintrin.h>
#elif defined(TLP_SIMD_BACKEND_NEON)
#include <arm_neon.h>
#endif

// Read-prefetch hint for gather-style loops on the query hot path (e.g. the
// 2-layer+ residual verification fetching MBRs by id); no-op where the
// builtin is unavailable.
#if defined(__GNUC__) || defined(__clang__)
#define TLP_PREFETCH_RO(addr) __builtin_prefetch((addr), 0)
#else
#define TLP_PREFETCH_RO(addr) ((void)0)
#endif

namespace tlp {
namespace simd {

inline constexpr const char* kBackendName =
#if defined(TLP_SIMD_BACKEND_AVX2)
    "avx2";
#elif defined(TLP_SIMD_BACKEND_NEON)
    "neon";
#else
    "scalar";
#endif

#if defined(TLP_SIMD_VECTORIZED)
inline constexpr bool kVectorized = true;
#else
inline constexpr bool kVectorized = false;
#endif

/// Per-lane interval bounds for a 4-coordinate comparison kernel. A value
/// vector v passes iff no lane violates v[i] <= le[i] && v[i] >= ge[i];
/// disabled lanes use +-infinity (v[i] > +inf and v[i] < -inf are both
/// always false, including for infinite v[i]).
///
/// The kernel tests the DROP condition (v[i] > le[i] || v[i] < ge[i]) with
/// ordered, non-signaling comparisons, so a NaN lane — in the values or in
/// the bounds — never drops. This reproduces the scalar §IV-B loops exactly:
/// they skip an entry when `coordinate < bound` is true, which is false for
/// NaN operands.
struct alignas(32) LaneBounds {
  Coord le[4];
  Coord ge[4];
};

/// Scalar reference kernel; the semantics every backend must match
/// bit-for-bit (tests/simd_test.cc proves it differentially).
inline bool MatchesScalar(const Coord* v, const LaneBounds& b) {
  bool drop = false;
  for (int i = 0; i < 4; ++i) {
    drop = drop || v[i] > b.le[i] || v[i] < b.ge[i];
  }
  return !drop;
}

/// True iff all four lanes of `v` lie inside their [ge, le] interval.
/// `v` needs no particular alignment (unaligned load on vector backends).
inline bool Matches(const Coord* v, const LaneBounds& b) {
#if defined(TLP_SIMD_BACKEND_AVX2)
  const __m256d values = _mm256_loadu_pd(v);
  // _CMP_*_OQ: ordered, quiet — false on NaN, matching the scalar kernel.
  const __m256d drop =
      _mm256_or_pd(_mm256_cmp_pd(values, _mm256_load_pd(b.le), _CMP_GT_OQ),
                   _mm256_cmp_pd(values, _mm256_load_pd(b.ge), _CMP_LT_OQ));
  return _mm256_movemask_pd(drop) == 0;
#elif defined(TLP_SIMD_BACKEND_NEON)
  const float64x2_t lo = vld1q_f64(v);
  const float64x2_t hi = vld1q_f64(v + 2);
  const uint64x2_t drop_lo =
      vorrq_u64(vcgtq_f64(lo, vld1q_f64(b.le)), vcltq_f64(lo, vld1q_f64(b.ge)));
  const uint64x2_t drop_hi = vorrq_u64(vcgtq_f64(hi, vld1q_f64(b.le + 2)),
                                       vcltq_f64(hi, vld1q_f64(b.ge + 2)));
  const uint64x2_t drop = vorrq_u64(drop_lo, drop_hi);
  return (vgetq_lane_u64(drop, 0) | vgetq_lane_u64(drop, 1)) == 0;
#else
  return MatchesScalar(v, b);
#endif
}

/// Hit mask for four value vectors at once: bit s is set iff the vector at
/// `v[s]` matches `b` exactly as `Matches` would decide it.
///
/// Requires bounds produced for box-comparison masks — lanes 0 and 1 only
/// upper-bounded (ge[0] == ge[1] == -inf) and lanes 2 and 3 only
/// lower-bounded (le[2] == le[3] == +inf) — which is what grid/scan.h's
/// LaneBoundsForMask emits: the §IV-B comparisons only ever lower-bound the
/// upper endpoints and upper-bound the lower endpoints. The AVX2 backend
/// exploits this to evaluate the four boxes transposed (coordinate-major)
/// with one compare per active-bound lane and a single movemask, instead of
/// four serialized per-box mask extractions.
inline unsigned MatchesMask4(const Coord* const v[4], const LaneBounds& b) {
#if defined(TLP_SIMD_BACKEND_AVX2)
  const __m256d r0 = _mm256_loadu_pd(v[0]);
  const __m256d r1 = _mm256_loadu_pd(v[1]);
  const __m256d r2 = _mm256_loadu_pd(v[2]);
  const __m256d r3 = _mm256_loadu_pd(v[3]);
  // 4x4 transpose: lane-major [xl yl xu yu] x 4 -> box-major xl[4] yl[4]...
  const __m256d t0 = _mm256_unpacklo_pd(r0, r1);  // xl0 xl1 xu0 xu1
  const __m256d t1 = _mm256_unpackhi_pd(r0, r1);  // yl0 yl1 yu0 yu1
  const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
  const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
  const __m256d xl = _mm256_permute2f128_pd(t0, t2, 0x20);
  const __m256d yl = _mm256_permute2f128_pd(t1, t3, 0x20);
  const __m256d xu = _mm256_permute2f128_pd(t0, t2, 0x31);
  const __m256d yu = _mm256_permute2f128_pd(t1, t3, 0x31);
  const __m256d drop = _mm256_or_pd(
      _mm256_or_pd(
          _mm256_cmp_pd(xl, _mm256_broadcast_sd(&b.le[0]), _CMP_GT_OQ),
          _mm256_cmp_pd(yl, _mm256_broadcast_sd(&b.le[1]), _CMP_GT_OQ)),
      _mm256_or_pd(
          _mm256_cmp_pd(xu, _mm256_broadcast_sd(&b.ge[2]), _CMP_LT_OQ),
          _mm256_cmp_pd(yu, _mm256_broadcast_sd(&b.ge[3]), _CMP_LT_OQ)));
  return ~static_cast<unsigned>(_mm256_movemask_pd(drop)) & 0xFu;
#else
  unsigned hits = 0;
  for (unsigned s = 0; s < 4; ++s) {
    hits |= static_cast<unsigned>(Matches(v[s], b)) << s;
  }
  return hits;
#endif
}

}  // namespace simd
}  // namespace tlp

#endif  // TLP_COMMON_SIMD_H_
