#include "common/file_system.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/env.h"

namespace tlp {

WritableFile::~WritableFile() = default;
FileSystem::~FileSystem() = default;

std::string DirnameOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

namespace {

Status Errno(const std::string& path, const char* what) {
  return Status::IoError(path + ": " + what + ": " + ErrnoMessage(errno));
}

/// Buffered append-only POSIX file. Buffering matters: the snapshot writer
/// emits many small records (a 20-byte begins blob per tile), and one
/// write(2) per record would turn a 16M-tile save into 16M syscalls.
class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      (void)FlushBuffer().ok();  // best effort
      ::close(fd_);
    }
  }

  Status Append(const void* data, std::size_t n) override {
    if (fd_ < 0) return Status::IoError(path_ + ": append on closed file");
    const auto* p = static_cast<const unsigned char*>(data);
    if (buffer_.size() + n <= kBufferCap) {
      buffer_.insert(buffer_.end(), p, p + n);
      return Status::OK();
    }
    Status s = FlushBuffer();
    if (!s.ok()) return s;
    if (n <= kBufferCap / 2) {
      buffer_.insert(buffer_.end(), p, p + n);
      return Status::OK();
    }
    return WriteAll(p, n);
  }

  Status WriteAt(std::uint64_t offset, const void* data,
                 std::size_t n) override {
    if (fd_ < 0) return Status::IoError(path_ + ": write on closed file");
    // The buffer holds bytes logically *after* anything written so far, so
    // it must land in the file before an absolute-offset overwrite.
    Status s = FlushBuffer();
    if (!s.ok()) return s;
    const auto* p = static_cast<const unsigned char*>(data);
    std::size_t done = 0;
    while (done < n) {
      const ssize_t w = ::pwrite(fd_, p + done, n - done,
                                 static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno(path_, "pwrite failed");
      }
      done += static_cast<std::size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IoError(path_ + ": sync on closed file");
    Status s = FlushBuffer();
    if (!s.ok()) return s;
    if (::fsync(fd_) != 0) return Errno(path_, "fsync failed");
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    Status s = FlushBuffer();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0 && s.ok()) s = Errno(path_, "close failed");
    return s;
  }

 private:
  static constexpr std::size_t kBufferCap = 1 << 16;

  Status FlushBuffer() {
    if (buffer_.empty()) return Status::OK();
    Status s = WriteAll(buffer_.data(), buffer_.size());
    buffer_.clear();
    return s;
  }

  Status WriteAll(const unsigned char* p, std::size_t n) {
    std::size_t done = 0;
    while (done < n) {
      const ssize_t w = ::write(fd_, p + done, n - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Errno(path_, "write failed");
      }
      done += static_cast<std::size_t>(w);
    }
    return Status::OK();
  }

  std::string path_;
  int fd_;
  std::vector<unsigned char> buffer_;
};

class PosixFileSystem final : public FileSystem {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Errno(path, "cannot create");
    *out = std::make_unique<PosixWritableFile>(path, fd);
    return Status::OK();
  }

  Status ReadFile(const std::string& path,
                  std::vector<unsigned char>* out) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno(path, "cannot open");
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const Status s = Errno(path, "cannot stat");
      ::close(fd);
      return s;
    }
    if (!S_ISREG(st.st_mode)) {
      ::close(fd);
      return Status::IoError(path + ": not a regular file");
    }
    out->resize(static_cast<std::size_t>(st.st_size));
    std::size_t done = 0;
    while (done < out->size()) {
      const ssize_t r =
          ::read(fd, out->data() + done, out->size() - done);
      if (r < 0) {
        if (errno == EINTR) continue;
        const Status s = Errno(path, "read failed");
        ::close(fd);
        return s;
      }
      if (r == 0) break;  // shrank underneath us
      done += static_cast<std::size_t>(r);
    }
    ::close(fd);
    if (done != out->size()) return Status::IoError(path + ": short read");
    return Status::OK();
  }

  Status MapReadOnly(const std::string& path, MappedFile* out) override {
    std::string error;
    if (!MappedFile::Open(path, out, &error)) return Status::IoError(error);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno(from, ("rename to '" + to + "' failed").c_str());
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return Errno(path, "remove failed");
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno(path, "cannot open directory");
    if (::fsync(fd) != 0) {
      const Status s = Errno(path, "directory fsync failed");
      ::close(fd);
      return s;
    }
    ::close(fd);
    return Status::OK();
  }

  Status Truncate(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno(path, "truncate failed");
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    names->clear();
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return Errno(path, "cannot list directory");
    // readdir-per-DIR-stream is thread-safe on every libc we target; the
    // _r variant is deprecated in glibc and this stream is function-local.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    while (const struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names->push_back(name);
    }
    ::closedir(dir);
    return Status::OK();
  }
};

}  // namespace

FileSystem* FileSystem::Default() {
  static PosixFileSystem* posix = new PosixFileSystem();  // never destroyed
  return posix;
}

}  // namespace tlp
