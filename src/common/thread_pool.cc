#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace tlp {

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
    // An unconsumed error dies with the pool: rethrowing from a destructor
    // would terminate, which is exactly what this pool exists to prevent.
    first_error_ = nullptr;
  }
  task_ready_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(mutex_);
  if (first_error_ != nullptr) {
    // Consume before rethrowing so the error surfaces exactly once and the
    // pool is reusable afterwards.
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.Unlock();  // rethrow outside the critical section
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    bool discard;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && tasks_.empty()) task_ready_.Wait(mutex_);
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      // Once a task has thrown, the rest of the batch is moot: drain the
      // queue without running it so Wait() can report the failure promptly
      // (and still observe in_flight_ reach zero — no deadlock, no leak).
      discard = first_error_ != nullptr;
    }
    if (!discard) {
      try {
        task();
      } catch (...) {
        MutexLock lock(mutex_);
        if (first_error_ == nullptr) {
          first_error_ = std::current_exception();
        }
      }
    }
    task = nullptr;  // run destructors of captures outside the lock
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t n = pool.num_threads();
  if (n <= 1) {
    body(0, count);
    return;
  }
  // Over-decompose 4x so uneven per-chunk work still balances.
  const std::size_t chunks = std::min(count, n * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += chunk_size) {
    const std::size_t end = std::min(count, begin + chunk_size);
    pool.Submit([&body, begin, end] { body(begin, end); });
  }
  pool.Wait();  // rethrows the first chunk exception, if any
}

void ParallelForChunks(
    ThreadPool& pool, std::size_t count, std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (num_chunks == 0) return;
  auto chunk_begin = [count, num_chunks](std::size_t c) {
    return count / num_chunks * c + std::min(c, count % num_chunks);
  };
  if (pool.num_threads() <= 1 || num_chunks == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) {
      body(c, chunk_begin(c), chunk_begin(c + 1));
    }
    return;
  }
  for (std::size_t c = 0; c < num_chunks; ++c) {
    pool.Submit([&body, chunk_begin, c] {
      body(c, chunk_begin(c), chunk_begin(c + 1));
    });
  }
  pool.Wait();  // rethrows the first chunk exception, if any
}

}  // namespace tlp
