#ifndef TLP_COMMON_FAULT_INJECTING_FS_H_
#define TLP_COMMON_FAULT_INJECTING_FS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/file_system.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tlp {

/// A FileSystem decorator that makes I/O failures reproducible in unit
/// tests (the LevelDB failpoint recipe; docs/ROBUSTNESS.md shows how to
/// write tests against it). It delegates every call to a base filesystem
/// (Default() unless given another), counts the operations as they stream
/// through, and injects a failure at an armed point:
///
///   FaultInjectingFs fs;
///   fs.FailOperation(k);              // ENOSPC-style error on the k-th op
///   Status s = index.Save(path, &fs); // must fail without a torn file
///
/// Supported injections:
///  * FailOperation(k)       — the k-th counted operation fails outright.
///  * FailNextOf(op)         — the next operation of one kind fails (e.g.
///                             the rename, modelling a crash just before
///                             the snapshot becomes visible).
///  * ShortWriteAt(k, bytes) — if the k-th operation is an Append, only a
///                             `bytes`-byte prefix reaches the file before
///                             the error (a torn write).
///  * Truncate(path, n)      — inherited: cut a file to any prefix.
///
/// A sweep test arms k = 0, 1, 2, ... until a run completes with no fault
/// fired (op_count() tells how many operations a clean run needs), proving
/// an invariant at *every* failure point of a protocol rather than at the
/// few a hand-written mock happens to cover.
///
/// Counting and arming are mutex-guarded so parallel users (the thread
/// pool's workers) can share one instance under TSan.
class FaultInjectingFs final : public FileSystem {
 public:
  enum class Op {
    kNewWritableFile,
    kAppend,
    kWriteAt,
    kSync,
    kClose,
    kReadFile,
    kMap,
    kRename,
    kRemove,
    kSyncDir,
    kTruncate,
    kListDir,
  };
  static const char* OpName(Op op);
  /// Parses an OpName ("rename", "sync", ...); false on unknown names.
  static bool ParseOp(const std::string& name, Op* out);

  /// Wraps `base` (FileSystem::Default() when null; not owned).
  explicit FaultInjectingFs(FileSystem* base = nullptr);

  /// Arms a hard failure of the k-th (0-based) counted operation. The op
  /// does not reach the base filesystem.
  void FailOperation(std::uint64_t k);

  /// Arms a hard failure of the next operation of kind `op`.
  void FailNextOf(Op op);

  /// Arms a short write: the k-th operation, when it is an Append, writes
  /// only the first `bytes` bytes and then fails.
  void ShortWriteAt(std::uint64_t k, std::size_t bytes);

  /// Disarms everything and resets the counter and log.
  void Reset();

  /// Operations counted so far (whether injected or passed through).
  std::uint64_t op_count() const;

  /// True once an armed fault has fired.
  bool fault_fired() const;

  /// Every operation observed since the last Reset(), in order — tests
  /// assert protocol ordering (e.g. Sync before Rename before SyncDir)
  /// against this.
  std::vector<Op> OperationLog() const;

  // FileSystem:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status ReadFile(const std::string& path,
                  std::vector<unsigned char>* out) override;
  Status MapReadOnly(const std::string& path, MappedFile* out) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Status Truncate(const std::string& path, std::uint64_t size) override;
  bool FileExists(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;

 private:
  friend class FaultInjectingWritableFile;

  /// Counts one operation; returns a failure Status when a fault fires.
  /// `short_write_bytes` (when non-null) receives the armed short-write
  /// length if this op is the armed short write.
  Status Count(Op op, const std::string& path,
               std::size_t* short_write_bytes = nullptr);

  FileSystem* const base_;
  mutable Mutex mutex_;
  std::uint64_t next_op_ TLP_GUARDED_BY(mutex_) = 0;
  std::vector<Op> log_ TLP_GUARDED_BY(mutex_);
  bool fault_fired_ TLP_GUARDED_BY(mutex_) = false;

  bool fail_op_armed_ TLP_GUARDED_BY(mutex_) = false;
  std::uint64_t fail_op_index_ TLP_GUARDED_BY(mutex_) = 0;
  bool fail_kind_armed_ TLP_GUARDED_BY(mutex_) = false;
  Op fail_kind_ TLP_GUARDED_BY(mutex_) = Op::kAppend;
  bool short_write_armed_ TLP_GUARDED_BY(mutex_) = false;
  std::uint64_t short_write_index_ TLP_GUARDED_BY(mutex_) = 0;
  std::size_t short_write_bytes_ TLP_GUARDED_BY(mutex_) = 0;
};

}  // namespace tlp

#endif  // TLP_COMMON_FAULT_INJECTING_FS_H_
