#ifndef TLP_COMMON_TYPES_H_
#define TLP_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace tlp {

/// Coordinate type. The paper normalizes all datasets to [0,1] per dimension;
/// we use double throughout so TIGER-scale coordinates keep full precision.
using Coord = double;

/// Identifier of a spatial object. Object geometries are stored once in a
/// GeometryStore and referenced by id from every index partition (paper §III).
using ObjectId = std::uint32_t;

inline constexpr ObjectId kInvalidObjectId =
    std::numeric_limits<ObjectId>::max();

/// Dimensions handled by the 2D index family in this library.
enum class Dim : int { kX = 0, kY = 1 };

}  // namespace tlp

#endif  // TLP_COMMON_TYPES_H_
