#ifndef TLP_COMMON_THREAD_POOL_H_
#define TLP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tlp {

/// Fixed-size worker pool. The paper uses OpenMP; we use std::thread so the
/// library has no compiler-extension dependency. Used by the batch executors
/// (§VI) and the distributed-execution simulator.
///
/// Not copyable or movable: workers capture `this`.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task. Tasks must not themselves block on Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Splits [0, count) into contiguous chunks and runs `body(begin, end)` for
/// each chunk on the pool, blocking until all chunks complete. When the pool
/// has one worker this degenerates to a sequential loop with no queuing.
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body);

/// Splits [0, count) into exactly `num_chunks` near-equal contiguous chunks
/// and runs `body(chunk, begin, end)` for every chunk index in
/// [0, num_chunks), blocking until all complete. The chunk boundaries depend
/// only on (count, num_chunks), so callers can give each chunk private
/// scratch state (e.g. a per-chunk count array) and merge deterministically
/// afterwards. Chunks may be empty (begin == end); every chunk index is
/// still invoked. With a one-worker pool the chunks run sequentially in
/// index order.
void ParallelForChunks(
    ThreadPool& pool, std::size_t count, std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

}  // namespace tlp

#endif  // TLP_COMMON_THREAD_POOL_H_
