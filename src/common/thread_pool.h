#ifndef TLP_COMMON_THREAD_POOL_H_
#define TLP_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tlp {

/// Fixed-size worker pool. The paper uses OpenMP; we use std::thread so the
/// library has no compiler-extension dependency. Used by the batch executors
/// (§VI), the parallel Build() paths, and the distributed-execution
/// simulator.
///
/// Exception safety: a task that throws does not touch std::terminate. The
/// pool captures the first exception (std::exception_ptr), discards the
/// tasks still queued in that batch (they are counted as finished but never
/// run — failing fast instead of burning cores on work whose batch already
/// failed), and Wait() rethrows the captured exception on the calling
/// thread exactly once after every submitted task has finished or been
/// discarded. After the rethrow the pool is clean and reusable. Destroying
/// a pool with an unconsumed error just drops it — destructors must not
/// throw. ParallelFor/ParallelForChunks and everything built on them
/// (BatchExecutor, parallel Build) inherit this contract through Wait().
///
/// Not copyable or movable: workers capture `this`.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Enqueues a task. Tasks must not themselves block on Wait(). A task
  /// submitted while a captured exception is pending joins the poisoned
  /// batch: it may be discarded unrun.
  void Submit(std::function<void()> task) TLP_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished executing (or was
  /// discarded after a failure), then rethrows the first exception any
  /// task of the batch threw. Returns normally when no task threw. Safe to
  /// call with zero submitted tasks.
  void Wait() TLP_EXCLUDES(mutex_);

  std::size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop() TLP_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ TLP_GUARDED_BY(mutex_);
  CondVar task_ready_;
  CondVar all_done_;
  std::size_t in_flight_ TLP_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ TLP_GUARDED_BY(mutex_) = false;
  /// First exception thrown by a task since the last Wait(). Non-null also
  /// serves as the "discard queued work" flag.
  std::exception_ptr first_error_ TLP_GUARDED_BY(mutex_);
};

/// Splits [0, count) into contiguous chunks and runs `body(begin, end)` for
/// each chunk on the pool, blocking until all chunks complete. When the pool
/// has one worker this degenerates to a sequential loop with no queuing.
/// Rethrows the first exception a chunk threw (after all chunks finished or
/// were discarded, so `body` is never still referenced when this returns).
void ParallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t, std::size_t)>& body);

/// Splits [0, count) into exactly `num_chunks` near-equal contiguous chunks
/// and runs `body(chunk, begin, end)` for every chunk index in
/// [0, num_chunks), blocking until all complete. The chunk boundaries depend
/// only on (count, num_chunks), so callers can give each chunk private
/// scratch state (e.g. a per-chunk count array) and merge deterministically
/// afterwards. Chunks may be empty (begin == end); every chunk index is
/// still invoked. With a one-worker pool the chunks run sequentially in
/// index order. Exceptions propagate as in ParallelFor.
void ParallelForChunks(
    ThreadPool& pool, std::size_t count, std::size_t num_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

}  // namespace tlp

#endif  // TLP_COMMON_THREAD_POOL_H_
