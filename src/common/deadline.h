#ifndef TLP_COMMON_DEADLINE_H_
#define TLP_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace tlp {

/// The monotonic-clock seam (lint rule TLP003, docs/STATIC_ANALYSIS.md).
///
/// Everywhere else in the library, time feeds statistics; here it feeds a
/// *decision* — "has this connection been idle too long?" (src/net). Such
/// decisions are the one legitimate consumer of the ambient monotonic clock
/// outside common/timer.h, so they are funneled through this header, which
/// in exchange offers a process-wide test override: tests freeze or step
/// the clock and timeout logic becomes fully deterministic.
///
/// Not a wall clock: the epoch is arbitrary (steady_clock's), values only
/// ever grow, and they never appear in query results or snapshots.

namespace deadline_internal {

using NowFn = std::uint64_t (*)();

inline std::uint64_t SteadyNowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline std::atomic<NowFn>& NowFnSlot() {
  static std::atomic<NowFn> slot{&SteadyNowNanos};
  return slot;
}

}  // namespace deadline_internal

/// Current monotonic time in nanoseconds (arbitrary epoch). All deadline
/// arithmetic in the library reads the clock through this function only.
inline std::uint64_t MonotonicNowNanos() {
  return deadline_internal::NowFnSlot().load(std::memory_order_relaxed)();
}

/// Replaces the clock behind MonotonicNowNanos() for tests (nullptr
/// restores the real steady_clock). Affects every Deadline in the process;
/// tests that install a fake clock must restore it before finishing.
inline void SetMonotonicClockForTest(deadline_internal::NowFn fn) {
  deadline_internal::NowFnSlot().store(
      fn != nullptr ? fn : &deadline_internal::SteadyNowNanos,
      std::memory_order_relaxed);
}

/// A point in monotonic time a connection must make progress by. Value
/// type; copying is cheap and comparison against "now" is one clock read.
class Deadline {
 public:
  /// Default-constructed deadlines never expire.
  Deadline() = default;

  static Deadline Never() { return Deadline(); }

  static Deadline AfterMillis(std::uint64_t ms) {
    Deadline d;
    const std::uint64_t now = MonotonicNowNanos();
    const std::uint64_t delta =
        ms > kNever / 1'000'000 ? kNever : ms * 1'000'000;
    d.at_nanos_ = now > kNever - delta ? kNever : now + delta;
    return d;
  }

  bool never() const { return at_nanos_ == kNever; }

  bool expired() const {
    return !never() && MonotonicNowNanos() >= at_nanos_;
  }

  /// Milliseconds until expiry, rounded UP (so a poll() sleeping for the
  /// returned value cannot wake before the deadline): 0 when expired, -1
  /// when the deadline never expires — exactly poll()'s timeout encoding.
  int RemainingPollMillis() const {
    if (never()) return -1;
    const std::uint64_t now = MonotonicNowNanos();
    if (now >= at_nanos_) return 0;
    const std::uint64_t ms = (at_nanos_ - now + 999'999) / 1'000'000;
    constexpr std::uint64_t kMaxPoll = std::numeric_limits<int>::max();
    return static_cast<int>(ms > kMaxPoll ? kMaxPoll : ms);
  }

 private:
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t at_nanos_ = kNever;
};

}  // namespace tlp

#endif  // TLP_COMMON_DEADLINE_H_
