#ifndef TLP_COMMON_ENV_H_
#define TLP_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace tlp {

/// Reads an environment variable as int64, returning `fallback` when unset or
/// unparsable. Benchmarks use this (TLP_SCALE, TLP_QUERIES, ...) so the whole
/// suite can be scaled up towards paper-sized runs on bigger machines.
std::int64_t EnvInt64(const std::string& name, std::int64_t fallback);

/// Reads an environment variable as double with a fallback.
double EnvDouble(const std::string& name, double fallback);

/// Global dataset scale multiplier (TLP_SCALE, default 1.0). Benchmarks
/// multiply their default cardinalities by this factor.
double DatasetScale();

}  // namespace tlp

#endif  // TLP_COMMON_ENV_H_
