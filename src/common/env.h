#ifndef TLP_COMMON_ENV_H_
#define TLP_COMMON_ENV_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace tlp {

/// Reads an environment variable as int64, returning `fallback` when unset or
/// unparsable. Benchmarks use this (TLP_SCALE, TLP_QUERIES, ...) so the whole
/// suite can be scaled up towards paper-sized runs on bigger machines.
std::int64_t EnvInt64(const std::string& name, std::int64_t fallback);

/// Reads an environment variable as double with a fallback.
double EnvDouble(const std::string& name, double fallback);

/// Global dataset scale multiplier (TLP_SCALE, default 1.0). Benchmarks
/// multiply their default cardinalities by this factor.
double DatasetScale();

/// Thread-safe textual form of an errno value (what std::strerror returns,
/// minus its shared static buffer — clang-tidy's concurrency-mt-unsafe
/// rejects that one). Every error-message formatter in the tree goes
/// through this instead of strerror().
[[nodiscard]] std::string ErrnoMessage(int err);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320 — the zlib/PNG
/// variant) of `n` bytes, resumable via `seed` (pass a previous return value
/// to extend a running checksum). The snapshot container (src/persist)
/// checksums every section with this.
std::uint32_t Crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Read-only memory-mapped file (RAII around open/fstat/mmap/munmap); the
/// zero-copy substrate of the snapshot mmap load path. Move-only; the
/// mapping is released on destruction or Close(). A mapped snapshot index
/// keeps its MappedFile alive for as long as any column views the mapping.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. On failure returns false and sets `*error`.
  /// An empty file maps successfully with size() == 0.
  static bool Open(const std::string& path, MappedFile* out,
                   std::string* error);

  bool valid() const { return valid_; }
  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }

  void Close();

 private:
  unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool valid_ = false;
};

}  // namespace tlp

#endif  // TLP_COMMON_ENV_H_
