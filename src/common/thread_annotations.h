#ifndef TLP_COMMON_THREAD_ANNOTATIONS_H_
#define TLP_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (docs/STATIC_ANALYSIS.md
// "Thread-safety annotations"). The macros attach lock-capability facts to
// declarations — which mutex guards which member, which private method may
// only run with which lock held — so the locking discipline that
// docs/CONCURRENCY.md and docs/DURABILITY.md state in prose becomes a
// compile-time proof under `-Wthread-safety` (error in every Clang CI job).
// TSan still runs: the analysis proves lock discipline on ALL paths, TSan
// catches the bugs annotations cannot express (ordering, atomics misuse).
//
// Off Clang (gcc, MSVC) every macro expands to nothing, so the annotations
// are free and the tree stays portable. tests/thread_safety/ carries a
// negative-compilation harness proving the macros have not rotted into
// permanent no-ops: seeded violations MUST fail to compile under Clang.
//
// Only src/common/mutex.h applies the attribute macros to lock primitives;
// everything else uses the tlp::Mutex/tlp::CondVar/tlp::MutexLock wrappers
// defined there (lint rule TLP006) and annotates its own members/methods
// with the macros below.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define TLP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef TLP_THREAD_ANNOTATION
#define TLP_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type to be a lock capability ("mutex" names it in
/// diagnostics). Applied to tlp::Mutex.
#define TLP_CAPABILITY(x) TLP_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor. Applied to tlp::MutexLock.
#define TLP_SCOPED_CAPABILITY TLP_THREAD_ANNOTATION(scoped_lockable)

/// Member annotation: reads/writes require holding the given mutex.
///   std::size_t in_flight_ TLP_GUARDED_BY(mu_) = 0;
#define TLP_GUARDED_BY(x) TLP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-member annotation: the *pointee* (not the pointer) is guarded.
#define TLP_PT_GUARDED_BY(x) TLP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: callers must hold the mutex(es) exclusively.
///   void AppendLocked(const DeltaOp& op) TLP_REQUIRES(writer_mu_);
#define TLP_REQUIRES(...) \
  TLP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: callers must hold the mutex(es) at least shared.
#define TLP_REQUIRES_SHARED(...) \
  TLP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function annotation: the call acquires the mutex(es) (caller must not
/// already hold them). On a scoped type's member, (re)locks the scope.
#define TLP_ACQUIRE(...) \
  TLP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: the call releases the mutex(es).
#define TLP_RELEASE(...) \
  TLP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: acquires the mutex iff the return value equals the
/// first argument. `bool TryLock() TLP_TRY_ACQUIRE(true);`
#define TLP_TRY_ACQUIRE(...) \
  TLP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function annotation: callers must NOT hold the mutex(es) — deadlock
/// prevention for self-locking public entry points.
#define TLP_EXCLUDES(...) TLP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations on mutex members.
#define TLP_ACQUIRED_BEFORE(...) \
  TLP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TLP_ACQUIRED_AFTER(...) \
  TLP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function annotation: returns a reference to the named capability
/// (lets wrappers expose the underlying mutex without losing the proof).
#define TLP_RETURN_CAPABILITY(x) TLP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Reserved for the
/// wrapper internals (mutex.h) and for code whose safety argument the
/// analysis cannot express; the suppression policy in
/// docs/STATIC_ANALYSIS.md requires an adjacent comment saying why.
#define TLP_NO_THREAD_SAFETY_ANALYSIS \
  TLP_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // TLP_COMMON_THREAD_ANNOTATIONS_H_
