#ifndef TLP_COMMON_COLUMN_H_
#define TLP_COMMON_COLUMN_H_

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tlp {

/// A read-mostly column of trivially copyable values that either OWNS its
/// storage (a std::vector, mutable) or VIEWS external read-only memory — in
/// practice a byte range inside a memory-mapped index snapshot
/// (src/persist). The grids' hot query loops only need data()/size(), so a
/// snapshot can be queried zero-copy straight out of the page cache; update
/// paths go through vec(), which is only legal on an owned column. Thaw()
/// converts a view back into owned storage by copying.
///
/// Copying/moving a Column is safe in both states: the view pointer targets
/// memory outside the column (the mapping outlives it by contract), and the
/// owned vector carries its own storage.
template <typename T>
class Column {
 public:
  Column() = default;

  bool frozen() const { return view_ != nullptr; }

  const T* data() const { return view_ != nullptr ? view_ : owned_.data(); }
  std::size_t size() const {
    return view_ != nullptr ? view_size_ : owned_.size();
  }
  bool empty() const { return size() == 0; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& operator[](std::size_t i) const { return data()[i]; }

  /// Mutable access to the owned storage. Must not be called on a frozen
  /// column — the public index API guards this (Build/Insert/Delete on a
  /// mapped index report an error before reaching any column), and the
  /// throw here is the release-mode backstop: without it, a guard missed at
  /// the index level would hand out the empty owned vector while queries
  /// read the view, silently desynchronizing the two (or worse, letting a
  /// caller write through stale pointers into the read-only mapping).
  /// vec() sits on update paths only, never in the query hot loops, so the
  /// branch costs nothing where it matters.
  std::vector<T>& vec() {
    if (view_ != nullptr) {
      throw std::logic_error("mutating a frozen (mapped) column");
    }
    return owned_;
  }
  const std::vector<T>& vec() const {
    if (view_ != nullptr) {
      throw std::logic_error("vec() on a frozen (mapped) column");
    }
    return owned_;
  }

  /// Points the column at external read-only memory and drops any owned
  /// storage. `p` must stay valid (and unmodified) for the column's
  /// lifetime or until Thaw()/SetView() replace it.
  void SetView(const T* p, std::size_t n) {
    std::vector<T>().swap(owned_);
    view_ = p;
    view_size_ = n;
  }

  /// Copies a view back into owned storage (no-op when already owned).
  void Thaw() {
    if (view_ == nullptr) return;
    owned_.assign(view_, view_ + view_size_);
    view_ = nullptr;
    view_size_ = 0;
  }

  /// Main-memory footprint: heap capacity when owned, mapped extent when
  /// frozen (address space that becomes resident as pages are touched).
  std::size_t footprint_bytes() const {
    return (view_ != nullptr ? view_size_ : owned_.capacity()) * sizeof(T);
  }

 private:
  std::vector<T> owned_;
  const T* view_ = nullptr;
  std::size_t view_size_ = 0;
};

}  // namespace tlp

#endif  // TLP_COMMON_COLUMN_H_
