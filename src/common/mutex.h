#ifndef TLP_COMMON_MUTEX_H_
#define TLP_COMMON_MUTEX_H_

// The project's one lock seam (docs/STATIC_ANALYSIS.md "Thread-safety
// annotations"). Every mutex, condition variable, and lock scope in src/
// goes through these wrappers — lint rules TLP006 (no raw std::mutex &
// friends outside this header) and TLP007 (no manual .lock()/.unlock();
// RAII only) funnel the tree here, and the Clang Thread Safety Analysis
// attributes carried by the wrappers are what make TLP_GUARDED_BY /
// TLP_REQUIRES declarations elsewhere provable at compile time.
//
// The wrappers add nothing at runtime: tlp::Mutex is exactly std::mutex,
// tlp::CondVar exactly std::condition_variable, tlp::MutexLock a scoped
// lock with explicit Unlock()/Lock() for the two protocols (group-commit
// leader, exception rethrow) that drop the lock mid-scope. Off Clang the
// attribute macros vanish and this is a zero-cost renaming.

#include <condition_variable>  // tlp-lint: allow(TLP006) the lock seam wraps the std primitives
#include <mutex>  // tlp-lint: allow(TLP006) the lock seam wraps the std primitives

#include "common/thread_annotations.h"

namespace tlp {

class CondVar;

/// Annotated std::mutex. Prefer MutexLock over manual Lock()/Unlock()
/// pairs; the manual methods exist for the RAII type itself and for the
/// rare adopt/transfer protocols.
class TLP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TLP_ACQUIRE() { mu_.lock(); }        // tlp-lint: allow(TLP007) the seam implements the RAII surface
  void Unlock() TLP_RELEASE() { mu_.unlock(); }    // tlp-lint: allow(TLP007) the seam implements the RAII surface
  [[nodiscard]] bool TryLock() TLP_TRY_ACQUIRE(true) {
    return mu_.try_lock();  // tlp-lint: allow(TLP007) the seam implements the RAII surface
  }

 private:
  friend class CondVar;
  std::mutex mu_;  // tlp-lint: allow(TLP006) the wrapped primitive itself
};

/// RAII lock scope over a Mutex — the tree's only way to hold a lock
/// (TLP007). Relockable: Unlock()/Lock() support the drop-the-lock-
/// mid-scope protocols (DurableLog's group-commit leader, ThreadPool's
/// rethrow-outside-the-lock); the destructor releases only if held.
class TLP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TLP_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() TLP_RELEASE() {
    if (held_) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (e.g. to run a blocking operation or rethrow outside
  /// the critical section). The destructor then does nothing unless
  /// Lock() re-acquires first.
  void Unlock() TLP_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

  /// Re-acquires after an explicit Unlock().
  void Lock() TLP_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

/// Annotated std::condition_variable. There is no predicate overload on
/// purpose: spell the loop out (`while (!cond) cv.Wait(mu);`) so the
/// predicate's guarded-member reads sit in a scope the analysis can see
/// the lock held in — a lambda predicate would hide them from the proof.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  /// Caller must hold `mu` (compiler-checked). Spurious wakeups happen:
  /// always wait in a condition loop.
  void Wait(Mutex& mu) TLP_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);  // tlp-lint: allow(TLP006) adapter to the std wait API
    cv_.wait(ul);
    ul.release();  // the lock stays held; ownership returns to the caller
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // tlp-lint: allow(TLP006) the wrapped primitive itself
};

}  // namespace tlp

#endif  // TLP_COMMON_MUTEX_H_
