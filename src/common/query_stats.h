#ifndef TLP_COMMON_QUERY_STATS_H_
#define TLP_COMMON_QUERY_STATS_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace tlp {

/// Per-thread query-operation counters: the observability layer behind the
/// paper's counting claims. Table II promises fewer comparisons per
/// candidate, Lemmas 1-4 promise duplicate results avoided *by construction*
/// (never generated, so never eliminated), and §IV promises fewer secondary
/// partitions touched per tile; these counters make all three measurable.
///
/// The layer is compile-time gated: with the CMake option TLP_STATS=ON
/// (default) every query path accounts into the calling thread's accumulator
/// via the TLP_STATS_* macros below; with TLP_STATS=OFF the macros expand to
/// `(void)0` and the query hot loops compile exactly as if this header did
/// not exist. Tests and CI run with stats on; publication-grade benchmark
/// runs should use -DTLP_STATS=OFF.
///
/// Threading model: one accumulator per thread (thread_local). Code that
/// fans a query batch out to worker threads (BatchExecutor) drains each
/// worker's accumulator and merges it into the caller's on Wait(), so the
/// caller observes batch-wide totals regardless of thread count.
struct QueryStats {
  /// Index-level queries executed (WindowQuery / DiskQuery /
  /// WindowCandidates / DiskQueryEntries calls).
  std::uint64_t queries = 0;
  /// Non-empty tiles whose contents were examined.
  std::uint64_t tiles_visited = 0;
  /// Entries scanned per secondary partition, indexed by ObjectClass
  /// (0=A, 1=B, 2=C, 3=D). Only classed (two-layer) scans count here.
  std::uint64_t scanned_class[4] = {0, 0, 0, 0};
  /// Entries scanned in unclassified (flat 1-layer / quad-tree style) tiles.
  std::uint64_t scanned_flat = 0;
  /// Per-entry predicate evaluations actually executed: §IV-B endpoint
  /// comparisons and per-entry MBR distance tests.
  std::uint64_t comparisons = 0;
  /// Probes spent in sorted-table binary searches (2-layer+, §IV-C);
  /// one search over n entries accounts ceil(log2(n))+1 probes.
  std::uint64_t binary_search_probes = 0;
  /// Replica entries whose examination the two-layer scheme skipped
  /// outright (classes B/C/D excluded by Lemmas 1-2, plus §IV-E disk
  /// row-dedup rejections). A 1-layer grid scans these and then discards
  /// the duplicates it generated; the two-layer grid never looks at them.
  std::uint64_t duplicates_avoided = 0;
  /// Duplicate results that *were* generated and then eliminated after the
  /// fact (1-layer reference-point rejections and hash sort-unique drops).
  /// Zero for the two-layer indices by Lemmas 1-4 — asserted in tests.
  std::uint64_t posthoc_dedup = 0;
  /// Filter-step results emitted (candidate (id) outputs).
  std::uint64_t candidates = 0;
  /// Refinement candidates accepted by Lemma 5 secondary filtering without
  /// an exact geometry test (hits) vs. ones needing the exact test (misses).
  std::uint64_t refine_hits = 0;
  std::uint64_t refine_misses = 0;
  /// Wall-clock seconds spent inside timed query entry points.
  double query_seconds = 0;

  /// Total entries scanned across classed and flat partitions.
  std::uint64_t scanned_total() const {
    return scanned_class[0] + scanned_class[1] + scanned_class[2] +
           scanned_class[3] + scanned_flat;
  }

  /// Adds every counter of `other` into this accumulator.
  void MergeFrom(const QueryStats& other);

  /// One-line JSON object (schema documented in docs/BENCHMARKING.md).
  std::string ToJson(const std::string& label) const;
};

/// True when the library was compiled with the stats layer (TLP_STATS=ON).
#ifdef TLP_STATS_ENABLED
inline constexpr bool kQueryStatsEnabled = true;
#else
inline constexpr bool kQueryStatsEnabled = false;
#endif

#ifdef TLP_STATS_ENABLED

/// The calling thread's accumulator. Hot paths reach it through the macros
/// below only, so the disabled build contains no reference to it.
inline QueryStats& CurrentQueryStats() {
  thread_local QueryStats stats;
  return stats;
}

/// Zeroes the calling thread's accumulator.
inline void ResetQueryStats() { CurrentQueryStats() = QueryStats{}; }

/// Snapshot of the calling thread's accumulator.
inline QueryStats GetQueryStats() { return CurrentQueryStats(); }

/// Adds `other` into the calling thread's accumulator (used to merge worker
/// stats back into a batch caller).
inline void MergeQueryStats(const QueryStats& other) {
  CurrentQueryStats().MergeFrom(other);
}

/// Moves the calling thread's accumulated stats into `*sink` and resets the
/// accumulator; run at the end of a worker task so a later task reusing the
/// same pool thread starts from zero.
inline void DrainQueryStatsInto(QueryStats* sink) {
  sink->MergeFrom(CurrentQueryStats());
  ResetQueryStats();
}

namespace stats_internal {

/// RAII per-query timer: counts one query and its wall-clock on destruction.
class ScopedQueryTimer {
 public:
  ScopedQueryTimer() : start_(std::chrono::steady_clock::now()) {}
  ScopedQueryTimer(const ScopedQueryTimer&) = delete;
  ScopedQueryTimer& operator=(const ScopedQueryTimer&) = delete;
  ~ScopedQueryTimer() {
    QueryStats& s = CurrentQueryStats();
    ++s.queries;
    s.query_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start_)
                           .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace stats_internal

#define TLP_STATS_ADD(field, amount) \
  ((void)(::tlp::CurrentQueryStats().field += (amount)))
#define TLP_STATS_CLASS_SCANNED(class_index, amount) \
  ((void)(::tlp::CurrentQueryStats()                 \
              .scanned_class[static_cast<int>(class_index)] += (amount)))
#define TLP_STATS_QUERY_TIMER() \
  ::tlp::stats_internal::ScopedQueryTimer tlp_stats_query_timer_guard_

#else  // !TLP_STATS_ENABLED

/// Disabled-build stubs: callers (tests, benches, batch merge) can stay
/// unconditional; everything folds to nothing.
inline void ResetQueryStats() {}
inline QueryStats GetQueryStats() { return QueryStats{}; }
inline void MergeQueryStats(const QueryStats&) {}
inline void DrainQueryStatsInto(QueryStats*) {}

#define TLP_STATS_ADD(field, amount) ((void)0)
#define TLP_STATS_CLASS_SCANNED(class_index, amount) ((void)0)
#define TLP_STATS_QUERY_TIMER() ((void)0)

#endif  // TLP_STATS_ENABLED

}  // namespace tlp

#endif  // TLP_COMMON_QUERY_STATS_H_
