#ifndef TLP_COMMON_STATUS_H_
#define TLP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace tlp {

/// Failure classes coarse enough to stay stable and fine enough to act on:
/// the CLI maps them to distinct exit codes, and callers can distinguish "the
/// environment failed me" (retry elsewhere) from "the input is bad" (do not
/// retry).
enum class StatusCode {
  kOk = 0,
  /// Unclassified failure (the legacy Status::Error constructor).
  kUnknown,
  /// The caller's request is malformed (bad arguments, malformed input
  /// text such as a WKT line or CSV row).
  kInvalidArgument,
  /// The environment failed: open/read/write/rename/fsync errors, ENOSPC,
  /// permissions, missing files.
  kIoError,
  /// The bytes were read fine but are not a valid artifact: bad magic,
  /// checksum mismatch, truncation, structurally inconsistent sections.
  kCorruption,
  /// A valid snapshot of the wrong index kind (or a kind that does not
  /// support the requested load mode).
  kKindMismatch,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kUnknown: return "unknown";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kKindMismatch: return "kind-mismatch";
  }
  return "?";
}

/// Lightweight success-or-(code, message) result used by the fallible,
/// non-hot-path parts of the library (snapshot persistence, file I/O). A
/// failure always carries a human-readable diagnostic so callers (CLI,
/// tests) can surface *why* a load was rejected instead of crashing on
/// malformed input, plus a StatusCode so they can react per failure class
/// (the CLI's exit codes, for one) without parsing message text.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status Error(std::string message) {
    return Status(StatusCode::kUnknown, std::move(message));
  }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status Corruption(std::string message) {
    return Status(StatusCode::kCorruption, std::move(message));
  }
  static Status KindMismatch(std::string message) {
    return Status(StatusCode::kKindMismatch, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (message_.empty()) message_ = StatusCodeName(code_);
  }

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace tlp

#endif  // TLP_COMMON_STATUS_H_
