#ifndef TLP_COMMON_STATUS_H_
#define TLP_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace tlp {

/// Lightweight success-or-message result used by the fallible, non-hot-path
/// parts of the library (snapshot persistence, file I/O). An empty message
/// means success; a failure always carries a human-readable diagnostic so
/// callers (CLI, tests) can surface *why* a load was rejected instead of
/// crashing on malformed input.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status Error(std::string message) {
    Status s;
    s.message_ = std::move(message);
    if (s.message_.empty()) s.message_ = "unknown error";
    return s;
  }

  bool ok() const { return message_.empty(); }
  const std::string& message() const { return message_; }

 private:
  std::string message_;
};

}  // namespace tlp

#endif  // TLP_COMMON_STATUS_H_
