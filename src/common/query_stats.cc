#include "common/query_stats.h"

#include <cstdio>

namespace tlp {

void QueryStats::MergeFrom(const QueryStats& other) {
  queries += other.queries;
  tiles_visited += other.tiles_visited;
  for (int c = 0; c < 4; ++c) scanned_class[c] += other.scanned_class[c];
  scanned_flat += other.scanned_flat;
  comparisons += other.comparisons;
  binary_search_probes += other.binary_search_probes;
  duplicates_avoided += other.duplicates_avoided;
  posthoc_dedup += other.posthoc_dedup;
  candidates += other.candidates;
  refine_hits += other.refine_hits;
  refine_misses += other.refine_misses;
  query_seconds += other.query_seconds;
}

std::string QueryStats::ToJson(const std::string& label) const {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"label\": \"%s\", \"enabled\": %s, \"queries\": %llu, "
      "\"query_seconds\": %.6f, \"tiles_visited\": %llu, "
      "\"scanned\": {\"A\": %llu, \"B\": %llu, \"C\": %llu, \"D\": %llu, "
      "\"flat\": %llu, \"total\": %llu}, "
      "\"comparisons\": %llu, \"binary_search_probes\": %llu, "
      "\"duplicates_avoided\": %llu, \"posthoc_dedup\": %llu, "
      "\"candidates\": %llu, \"refine_hits\": %llu, \"refine_misses\": %llu}",
      label.c_str(), kQueryStatsEnabled ? "true" : "false",
      static_cast<unsigned long long>(queries), query_seconds,
      static_cast<unsigned long long>(tiles_visited),
      static_cast<unsigned long long>(scanned_class[0]),
      static_cast<unsigned long long>(scanned_class[1]),
      static_cast<unsigned long long>(scanned_class[2]),
      static_cast<unsigned long long>(scanned_class[3]),
      static_cast<unsigned long long>(scanned_flat),
      static_cast<unsigned long long>(scanned_total()),
      static_cast<unsigned long long>(comparisons),
      static_cast<unsigned long long>(binary_search_probes),
      static_cast<unsigned long long>(duplicates_avoided),
      static_cast<unsigned long long>(posthoc_dedup),
      static_cast<unsigned long long>(candidates),
      static_cast<unsigned long long>(refine_hits),
      static_cast<unsigned long long>(refine_misses));
  return buf;
}

}  // namespace tlp
